//! Differential co-simulation oracle: lockstep verification of the
//! out-of-order [`Core`](teesec_uarch::core::Core) against the in-order
//! [`Iss`](teesec_uarch::iss::Iss) reference model.
//!
//! The checker is only as trustworthy as the simulated core it inspects.
//! This module makes that trust checkable: it runs every test case on both
//! machines over identical initial memory and compares architectural state
//! at every retire boundary — retired PC, destination value, the full
//! register file (at a configurable stride), and, at end of test, touched
//! memory and trap CSRs. Speculation, transient writebacks, lazy exceptions
//! and all the machinery TEESec probes must be architecturally invisible;
//! any visible difference is reported as a structured [`Divergence`] naming
//! the first mismatching retire and both machines' states.
//!
//! One class of reads is architecturally visible but *microarchitecture
//! defined*: performance-counter CSRs (`cycle`, `time`, `instret`, the
//! `hpmcounter` file). A purely architectural reference cannot predict the
//! core's cycle count, so — standard co-simulation practice — the driver
//! copies the core's committed read value into the ISS register at the
//! retire of such a read, and excludes counter CSRs from the end-of-test
//! comparison. Everything downstream of the read is still checked.

use serde::{Deserialize, Serialize};

use teesec_trace::Tracer;

use teesec_isa::csr::{self, CsrAddr};
use teesec_isa::inst::Inst;
use teesec_isa::priv_level::PrivLevel;
use teesec_isa::reg::Reg;
use teesec_tee::layout;
use teesec_tee::platform::BuildError;
use teesec_uarch::config::CoreConfig;
use teesec_uarch::core::Core;
use teesec_uarch::iss::Iss;

use crate::runner::build_platform;
use crate::testcase::{Step, TestCase};

/// Raw ISS steps allowed per core retire (bounds trap chains between two
/// retirement points; a blown fuse is itself a divergence).
const TRAP_FUSE: u64 = 64;

/// Options for a differential run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiffOptions {
    /// Compare the full 32-register file every `stride` retires (1 = every
    /// retire). PC and destination values are compared at *every* retire
    /// regardless.
    pub stride: u64,
    /// Cycle budget override (defaults to the case's own `max_cycles`).
    pub max_cycles: Option<u64>,
    /// Deterministic fault injected into the core mid-run — the oracle's
    /// self-test knob (a correct oracle must catch its own planted bugs).
    pub fault: Option<FaultInjection>,
}

impl Default for DiffOptions {
    fn default() -> DiffOptions {
        DiffOptions {
            stride: 1,
            max_cycles: None,
            fault: None,
        }
    }
}

/// A deterministic, test-only fault planted into the out-of-order core
/// while it runs under the oracle. Used to validate that the oracle
/// actually detects real architectural corruption (acceptance: an injected
/// bug must produce a [`Divergence`] naming the first bad retire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultInjection {
    /// XOR `reg` in the core's architectural register file immediately
    /// after the `at_retire`-th retirement.
    CorruptArchReg {
        /// 1-based retirement ordinal after which the corruption lands.
        at_retire: u64,
        /// Register to corrupt.
        reg: Reg,
        /// Bits to flip.
        xor: u64,
    },
}

/// Architectural snapshot of one machine at a divergence point.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineState {
    /// Next PC.
    pub pc: u64,
    /// Instructions retired.
    pub retired: u64,
    /// The 32 architectural registers, x0 first.
    pub regs: Vec<u64>,
    /// Privilege level.
    pub priv_level: PrivLevel,
    /// Machine trap cause.
    pub mcause: u64,
    /// Machine exception PC.
    pub mepc: u64,
    /// Machine trap value.
    pub mtval: u64,
}

fn core_state(core: &Core) -> MachineState {
    MachineState {
        pc: 0,
        retired: core.retired(),
        regs: Reg::all().map(|r| core.reg(r)).collect(),
        priv_level: core.priv_level,
        mcause: core.csr.mcause,
        mepc: core.csr.mepc,
        mtval: core.csr.mtval,
    }
}

fn iss_state(iss: &Iss) -> MachineState {
    MachineState {
        pc: iss.pc,
        retired: iss.retired(),
        regs: Reg::all().map(|r| iss.reg(r)).collect(),
        priv_level: iss.priv_level,
        mcause: iss.csr.mcause,
        mepc: iss.csr.mepc,
        mtval: iss.csr.mtval,
    }
}

/// What diverged first.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DivergenceKind {
    /// The two machines retired different PCs at the same ordinal.
    RetirePc {
        /// PC the core retired.
        core_pc: u64,
        /// PC the ISS retired.
        iss_pc: u64,
    },
    /// Same PC, but the destination register received different values.
    DestValue {
        /// Destination register.
        reg: Reg,
        /// Value the core committed.
        core_value: u64,
        /// Value the ISS computed.
        iss_value: u64,
    },
    /// A stride register-file sweep found a mismatch (first register named).
    RegFile {
        /// First mismatching register.
        reg: Reg,
        /// Core's architectural value.
        core_value: u64,
        /// ISS value.
        iss_value: u64,
    },
    /// End-of-test memory comparison found a mismatch.
    Memory {
        /// First differing byte address.
        addr: u64,
        /// Core memory byte.
        core_byte: u8,
        /// ISS memory byte.
        iss_byte: u8,
    },
    /// End-of-test trap/translation CSR mismatch.
    Csr {
        /// CSR name (`mcause`, `mepc`, `mtval`, `mstatus`, `satp`).
        name: String,
        /// Core value.
        core_value: u64,
        /// ISS value.
        iss_value: u64,
    },
    /// The core halted but the ISS did not (or vice versa).
    ExitStatus {
        /// Whether the core halted.
        core_halted: bool,
        /// Whether the ISS halted.
        iss_halted: bool,
    },
    /// The ISS could not produce a retirement to match the core's (halted
    /// early, or a trap storm blew the per-retire fuse).
    IssStalled,
}

/// A structured first-divergence report: the ordinal and instruction where
/// the machines first disagreed, plus both machines' full states.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Divergence {
    /// 1-based retirement ordinal of the first mismatch (0 when the
    /// mismatch was only visible at end of test).
    pub retire_seq: u64,
    /// PC of the instruction at the mismatch (core's view).
    pub pc: u64,
    /// Disassembly-ish rendering of the instruction, when known.
    pub inst: String,
    /// What diverged.
    pub kind: DivergenceKind,
    /// The out-of-order core's architectural state at the divergence.
    pub core: MachineState,
    /// The reference ISS state at the divergence.
    pub iss: MachineState,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "divergence at retire #{} pc={:#x} [{}]: {:?}",
            self.retire_seq, self.pc, self.inst, self.kind
        )
    }
}

/// Outcome of differentially executing one case.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DiffVerdict {
    /// Every compared retire, the final register file, touched memory and
    /// trap CSRs agreed.
    Match {
        /// Retirements compared in lockstep.
        retires: u64,
        /// Core cycles consumed.
        cycles: u64,
    },
    /// The machines disagreed; the report names the first bad retire.
    Diverged(Divergence),
    /// The case is outside the oracle's model (asynchronous interrupts) or
    /// blew its cycle budget before halting.
    Skipped {
        /// Why the case was not compared.
        reason: String,
    },
}

impl DiffVerdict {
    /// True when the verdict is a divergence.
    pub fn diverged(&self) -> bool {
        matches!(self, DiffVerdict::Diverged(_))
    }
}

/// Per-case differential result (name + verdict), the JSONL/event payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaseDiff {
    /// Test-case name.
    pub case: String,
    /// Verdict.
    pub verdict: DiffVerdict,
}

/// Aggregate over a corpus.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiffSummary {
    /// Cases compared clean.
    pub matches: u64,
    /// Cases that diverged.
    pub divergences: u64,
    /// Cases skipped (irq-driven or budget-blown).
    pub skipped: u64,
    /// Total retirements compared in lockstep.
    pub retires_compared: u64,
    /// Per-case verdicts.
    pub cases: Vec<CaseDiff>,
}

/// Does the case repoint `satp` without a subsequent `sfence.vma` before
/// the poisoned translation is consumed? (Conservatively: any explicit
/// `satp` repoint marks the case, since the poisoning primitive exists to
/// probe the stale-translation window.)
fn exploits_translation_staleness(tc: &TestCase) -> bool {
    tc.host_steps
        .iter()
        .chain(tc.enclave_steps.iter().flatten())
        .any(|s| matches!(s, Step::SetSatpSv39 { .. }))
}

/// Is this a read of a performance-counter CSR whose value is
/// microarchitecture-defined (and therefore synchronized core → ISS rather
/// than compared)?
fn is_uarch_defined_csr_read(inst: &Inst) -> bool {
    let addr = match inst {
        Inst::Csr { csr: a, .. } => *a,
        _ => return false,
    };
    uarch_defined_csr(addr)
}

fn uarch_defined_csr(addr: CsrAddr) -> bool {
    let hpm = csr::HPM_COUNTER_COUNT as CsrAddr;
    matches!(
        addr,
        csr::CYCLE | csr::TIME | csr::INSTRET | csr::MCYCLE | csr::MINSTRET
    ) || (csr::HPMCOUNTER3..csr::HPMCOUNTER3 + hpm).contains(&addr)
        || (csr::MHPMCOUNTER3..csr::MHPMCOUNTER3 + hpm).contains(&addr)
}

/// Differentially executes `tc` on `cfg`: the out-of-order core in
/// lockstep against the reference ISS over identical initial memory.
///
/// # Errors
///
/// Propagates [`BuildError`] when the case does not assemble or overflows
/// a region (same contract as [`crate::runner::run_case`]).
pub fn diff_case(
    tc: &TestCase,
    cfg: &CoreConfig,
    opts: &DiffOptions,
) -> Result<DiffVerdict, BuildError> {
    if tc.irq_at.is_some() {
        return Ok(DiffVerdict::Skipped {
            reason: "asynchronous external interrupt (not modeled by the ISS)".into(),
        });
    }
    if exploits_translation_staleness(tc) {
        // Repointing satp without an intervening sfence.vma makes the
        // program's behaviour *implementation-defined*: the privileged spec
        // permits stale translations to linger, so the core's TLB may
        // legally keep serving the old mapping while the architectural ISS
        // (which walks afresh on every access) faults on the poisoned root.
        // Both are correct; there is nothing to compare. This is precisely
        // the staleness window the D2 access path probes.
        return Ok(DiffVerdict::Skipped {
            reason: "satp poisoning without sfence.vma exploits implementation-defined \
                     translation staleness (core TLB vs. architectural re-walk)"
                .into(),
        });
    }
    // Building is deterministic, so a second build hands us the exact
    // memory image the core starts from.
    let mut platform = build_platform(tc, cfg)?;
    let iss_mem = build_platform(tc, cfg)?.core.mem;
    let mut iss = Iss::new(iss_mem, layout::SM_BASE).with_hpm_counters(cfg.hpm_counters);

    let core = &mut platform.core;
    core.set_retire_probe(true);
    let limit = opts.max_cycles.unwrap_or(tc.max_cycles);
    let stride = opts.stride.max(1);
    let mut retires = 0u64;
    let mut last_swept = 0u64;
    let mut last_pc = layout::SM_BASE;
    let mut last_inst = String::from("<reset>");

    while !core.halted && core.cycle < limit {
        core.step();
        for ev in core.take_retired_log() {
            retires += 1;
            last_pc = ev.pc;
            last_inst = format!("{:?}", ev.inst);
            let Some(step) = iss.step_retire(TRAP_FUSE) else {
                return Ok(diverged(
                    retires,
                    ev.pc,
                    &ev.inst,
                    DivergenceKind::IssStalled,
                    core,
                    &iss,
                ));
            };
            if step.pc != ev.pc {
                let kind = DivergenceKind::RetirePc {
                    core_pc: ev.pc,
                    iss_pc: step.pc,
                };
                return Ok(diverged(retires, ev.pc, &ev.inst, kind, core, &iss));
            }
            if let (Some(rd), Some(v)) = (ev.inst.dest(), ev.result) {
                if is_uarch_defined_csr_read(&ev.inst) {
                    // Counter reads are microarchitecture-defined: adopt the
                    // core's committed value so downstream dataflow stays
                    // comparable.
                    iss.set_reg(rd, v);
                } else if iss.reg(rd) != v {
                    let kind = DivergenceKind::DestValue {
                        reg: rd,
                        core_value: v,
                        iss_value: iss.reg(rd),
                    };
                    return Ok(diverged(retires, ev.pc, &ev.inst, kind, core, &iss));
                }
            }
            if let Some(FaultInjection::CorruptArchReg {
                at_retire,
                reg,
                xor,
            }) = opts.fault
            {
                if retires == at_retire {
                    let v = core.reg(reg);
                    core.set_reg(reg, v ^ xor);
                }
            }
        }
        // Full register-file sweep at stride boundaries. This runs only
        // after the cycle's whole retire batch is replayed, when both
        // machines sit at the same architectural point.
        if retires >= last_swept + stride {
            last_swept = retires;
            if let Some(kind) = regfile_mismatch(core, &iss) {
                return Ok(diverged_at(retires, last_pc, last_inst, kind, core, &iss));
            }
        }
    }

    if !core.halted {
        return Ok(DiffVerdict::Skipped {
            reason: format!("core hit the {limit}-cycle budget without halting"),
        });
    }
    // Flush buffered committed stores so raw memory is comparable.
    core.drain();

    if !iss.halted {
        let kind = DivergenceKind::ExitStatus {
            core_halted: true,
            iss_halted: false,
        };
        return Ok(diverged_at(retires, last_pc, last_inst, kind, core, &iss));
    }
    if let Some(kind) = regfile_mismatch(core, &iss) {
        return Ok(diverged_at(retires, last_pc, last_inst, kind, core, &iss));
    }
    if let Some(addr) = core.mem.first_difference(&iss.mem) {
        let kind = DivergenceKind::Memory {
            addr,
            core_byte: core.mem.read_u8(addr),
            iss_byte: iss.mem.read_u8(addr),
        };
        return Ok(diverged_at(retires, last_pc, last_inst, kind, core, &iss));
    }
    let csrs: [(&str, u64, u64); 5] = [
        ("mcause", core.csr.mcause, iss.csr.mcause),
        ("mepc", core.csr.mepc, iss.csr.mepc),
        ("mtval", core.csr.mtval, iss.csr.mtval),
        ("mstatus", core.csr.mstatus.0, iss.csr.mstatus.0),
        ("satp", core.csr.satp.0, iss.csr.satp.0),
    ];
    for (name, a, b) in csrs {
        if a != b {
            let kind = DivergenceKind::Csr {
                name: name.into(),
                core_value: a,
                iss_value: b,
            };
            return Ok(diverged_at(retires, last_pc, last_inst, kind, core, &iss));
        }
    }
    Ok(DiffVerdict::Match {
        retires,
        cycles: core.cycle,
    })
}

fn regfile_mismatch(core: &Core, iss: &Iss) -> Option<DivergenceKind> {
    for r in Reg::all() {
        if core.reg(r) != iss.reg(r) {
            return Some(DivergenceKind::RegFile {
                reg: r,
                core_value: core.reg(r),
                iss_value: iss.reg(r),
            });
        }
    }
    None
}

fn diverged(
    retire_seq: u64,
    pc: u64,
    inst: &Inst,
    kind: DivergenceKind,
    core: &Core,
    iss: &Iss,
) -> DiffVerdict {
    diverged_at(retire_seq, pc, format!("{inst:?}"), kind, core, iss)
}

fn diverged_at(
    retire_seq: u64,
    pc: u64,
    inst: String,
    kind: DivergenceKind,
    core: &Core,
    iss: &Iss,
) -> DiffVerdict {
    DiffVerdict::Diverged(Divergence {
        retire_seq,
        pc,
        inst,
        kind,
        core: core_state(core),
        iss: iss_state(iss),
    })
}

/// Runs [`diff_case`] over a corpus, aggregating verdicts. Build failures
/// surface as skips (the campaign engine already reports them separately).
pub fn diff_corpus(cases: &[TestCase], cfg: &CoreConfig, opts: &DiffOptions) -> DiffSummary {
    diff_corpus_traced(cases, cfg, opts, &Tracer::disabled())
}

/// [`diff_corpus`] with span recording: each case becomes a `case` span
/// (worker 0) wrapping a `diff` child span whose `verdict` arg carries the
/// oracle's outcome — `teesec diff --trace-out` renders the corpus as a
/// single-lane timeline.
pub fn diff_corpus_traced(
    cases: &[TestCase],
    cfg: &CoreConfig,
    opts: &DiffOptions,
    tracer: &Tracer,
) -> DiffSummary {
    diff_corpus_with(cases, cfg, opts, tracer, |_, _| {})
}

/// [`diff_corpus_traced`] with a per-case observer: after each verdict
/// folds in, `on_case(cases_done, &summary_so_far)` fires — the hook the
/// CLI uses to publish live progress while a long diff sweep runs.
pub fn diff_corpus_with(
    cases: &[TestCase],
    cfg: &CoreConfig,
    opts: &DiffOptions,
    tracer: &Tracer,
    mut on_case: impl FnMut(usize, &DiffSummary),
) -> DiffSummary {
    let mut summary = DiffSummary::default();
    for (seq, tc) in cases.iter().enumerate() {
        let mut case_span = tracer.span(0, "case", 0);
        case_span.arg("case", tc.name.as_str());
        case_span.arg("seq", seq);
        case_span.arg("design", cfg.name.as_str());
        let mut dspan = tracer.span(0, "diff", case_span.id());
        let verdict = match diff_case(tc, cfg, opts) {
            Ok(v) => v,
            Err(e) => DiffVerdict::Skipped {
                reason: format!("build failed: {e:?}"),
            },
        };
        dspan.arg(
            "verdict",
            match &verdict {
                DiffVerdict::Match { .. } => "match",
                DiffVerdict::Diverged(_) => "diverged",
                DiffVerdict::Skipped { .. } => "skipped",
            },
        );
        drop(dspan);
        drop(case_span);
        match &verdict {
            DiffVerdict::Match { retires, .. } => {
                summary.matches += 1;
                summary.retires_compared += retires;
            }
            DiffVerdict::Diverged(d) => {
                summary.divergences += 1;
                summary.retires_compared += d.retire_seq;
            }
            DiffVerdict::Skipped { .. } => summary.skipped += 1,
        }
        summary.cases.push(CaseDiff {
            case: tc.name.clone(),
            verdict,
        });
        on_case(seq + 1, &summary);
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble::{assemble_case, CaseParams};
    use crate::paths::AccessPath;

    #[test]
    fn default_case_matches_reference() {
        let cfg = CoreConfig::boom();
        let tc = assemble_case(AccessPath::LoadL1Hit, CaseParams::default(), &cfg).unwrap();
        let v = diff_case(&tc, &cfg, &DiffOptions::default()).expect("build");
        match v {
            DiffVerdict::Match { retires, .. } => assert!(retires > 10),
            other => panic!("expected a match, got {other:?}"),
        }
    }

    #[test]
    fn injected_corruption_is_caught_and_names_the_retire() {
        let cfg = CoreConfig::boom();
        let tc = assemble_case(AccessPath::LoadL1Hit, CaseParams::default(), &cfg).unwrap();
        let opts = DiffOptions {
            fault: Some(FaultInjection::CorruptArchReg {
                at_retire: 20,
                reg: Reg::A5,
                xor: 0xDEAD_BEEF,
            }),
            ..DiffOptions::default()
        };
        let v = diff_case(&tc, &cfg, &opts).expect("build");
        let DiffVerdict::Diverged(d) = v else {
            panic!("planted fault must be detected, got {v:?}");
        };
        assert!(
            d.retire_seq >= 20,
            "divergence cannot precede the injection (got retire #{})",
            d.retire_seq
        );
        assert!(
            matches!(
                d.kind,
                DivergenceKind::RegFile { .. }
                    | DivergenceKind::DestValue { .. }
                    | DivergenceKind::RetirePc { .. }
                    | DivergenceKind::Memory { .. }
            ),
            "unexpected kind: {:?}",
            d.kind
        );
    }

    #[test]
    fn irq_cases_are_skipped_not_compared() {
        let cfg = CoreConfig::boom();
        let mut tc = assemble_case(AccessPath::HpcRead, CaseParams::default(), &cfg).unwrap();
        tc.irq_at = Some(5_000);
        let v = diff_case(&tc, &cfg, &DiffOptions::default()).expect("build");
        assert!(matches!(v, DiffVerdict::Skipped { .. }));
    }

    #[test]
    fn verdicts_roundtrip_through_serde() {
        let d = Divergence {
            retire_seq: 7,
            pc: 0x8000_0010,
            inst: "Ecall".into(),
            kind: DivergenceKind::DestValue {
                reg: Reg::A0,
                core_value: 1,
                iss_value: 2,
            },
            core: MachineState {
                pc: 0,
                retired: 7,
                regs: vec![0; 32],
                priv_level: PrivLevel::Machine,
                mcause: 0,
                mepc: 0,
                mtval: 0,
            },
            iss: MachineState {
                pc: 0x8000_0014,
                retired: 7,
                regs: vec![0; 32],
                priv_level: PrivLevel::Machine,
                mcause: 0,
                mepc: 0,
                mtval: 0,
            },
        };
        let v = DiffVerdict::Diverged(d);
        let json = serde_json::to_string(&v).unwrap();
        let back: DiffVerdict = serde_json::from_str(&json).unwrap();
        assert_eq!(back, v);
    }
}
