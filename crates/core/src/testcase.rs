//! The test-case intermediate representation.
//!
//! Gadgets produce [`Step`] sequences; the gadget assembler composes them
//! into a [`TestCase`]; the runner lowers the steps to RISC-V code on the
//! Keystone-like platform. Keeping an IR between gadgets and assembly is
//! what makes gadgets parameterizable and fuzzable (paper §4.2).

use serde::{Deserialize, Serialize};

use teesec_isa::asm::Assembler;
use teesec_isa::csr::CsrAddr;
use teesec_isa::inst::MemWidth;
use teesec_isa::reg::Reg;
use teesec_tee::layout::Layout;
use teesec_tee::SbiCall;

use crate::paths::AccessPath;
use crate::secret::SecretCatalog;

/// One lowered action in a test program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Step {
    /// An SBI call (`a7 = call`, `a0 = enclave`, `ecall`).
    Sbi {
        /// The monitor function.
        call: SbiCall,
        /// The enclave argument.
        enclave: u64,
    },
    /// A load from an absolute address into `a5`.
    Load {
        /// Target address (virtual when translation is on).
        addr: u64,
        /// Access width.
        width: MemWidth,
    },
    /// A dependent use of the last loaded value (the transmit half of a
    /// transient gadget): `a6 = a5 + 1`.
    ConsumeLast,
    /// A store of an immediate value.
    Store {
        /// Target address.
        addr: u64,
        /// Value stored.
        value: u64,
        /// Access width.
        width: MemWidth,
    },
    /// Read a CSR into `a5`.
    CsrRead {
        /// CSR address.
        csr: CsrAddr,
    },
    /// Write a CSR.
    CsrWrite {
        /// CSR address.
        csr: CsrAddr,
        /// Immediate value to write.
        value: u64,
    },
    /// Point `satp` at an arbitrary physical page (sv39 mode) — the D2
    /// poisoning primitive.
    SetSatpSv39 {
        /// New root page-table physical address.
        root_pa: u64,
    },
    /// Restore `satp` to the value saved in `s10` (see [`Step::SaveSatp`]).
    RestoreSatp,
    /// Save the current `satp` into `s10`.
    SaveSatp,
    /// `sfence.vma` (flush TLBs/PTW cache).
    SfenceVma,
    /// Pad with nops until the region-relative offset, then emit a
    /// conditional branch with the given resolved direction (BTB gadgets
    /// need collision-controlled PCs).
    BranchAtOffset {
        /// Byte offset from the region base for the branch instruction.
        offset: u64,
        /// Whether the branch is taken.
        taken: bool,
    },
    /// Jump to an address expecting an instruction fetch fault; execution
    /// resumes after this step (fetch-probe access gadget).
    FetchProbe {
        /// Jump target.
        addr: u64,
    },
    /// Read the cycle counter into `s9` (timing probe).
    ReadCycle,
    /// `n` nops.
    Nops(u32),
}

/// Where a step sequence executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Actor {
    /// The untrusted host supervisor.
    Host,
    /// Enclave `i`.
    Enclave(usize),
}

/// A complete, runnable test case.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TestCase {
    /// Unique name (`<path>_<variant>`).
    pub name: String,
    /// The access path this case exercises.
    pub path: AccessPath,
    /// Host-side steps.
    pub host_steps: Vec<Step>,
    /// Per-enclave steps.
    pub enclave_steps: Vec<Vec<Step>>,
    /// Secrets seeded into the image.
    pub secrets: SecretCatalog,
    /// Whether the host runs under sv39.
    pub host_sv39: bool,
    /// `mcounteren` value programmed at boot.
    pub mcounteren: u64,
    /// SM software mitigation: clear HPCs at context switches.
    pub sm_clear_hpcs: bool,
    /// Machine external interrupt scheduled at this cycle, if any.
    pub irq_at: Option<u64>,
    /// Simulation budget.
    pub max_cycles: u64,
}

impl TestCase {
    /// A skeleton case with no steps.
    pub fn new(name: impl Into<String>, path: AccessPath) -> TestCase {
        TestCase {
            name: name.into(),
            path,
            host_steps: Vec::new(),
            enclave_steps: vec![Vec::new(); teesec_tee::layout::MAX_ENCLAVES],
            secrets: SecretCatalog::new(),
            host_sv39: false,
            mcounteren: u64::MAX,
            sm_clear_hpcs: false,
            irq_at: None,
            max_cycles: 3_000_000,
        }
    }

    /// Appends steps to an actor's program.
    pub fn push(&mut self, actor: Actor, step: Step) {
        match actor {
            Actor::Host => self.host_steps.push(step),
            Actor::Enclave(i) => self.enclave_steps[i].push(step),
        }
    }

    /// Total step count (diagnostics / Table 2 stats).
    pub fn step_count(&self) -> usize {
        self.host_steps.len() + self.enclave_steps.iter().map(Vec::len).sum::<usize>()
    }
}

/// Lowers a step sequence into assembly. `region_base` anchors
/// [`Step::BranchAtOffset`] padding; `label_salt` keeps labels unique when
/// multiple sequences land in one assembler.
pub fn lower_steps(a: &mut Assembler, steps: &[Step], region_base: u64, label_salt: &str) {
    for (i, step) in steps.iter().enumerate() {
        lower_step(a, step, region_base, &format!("{label_salt}_{i}"));
    }
}

fn lower_step(a: &mut Assembler, step: &Step, region_base: u64, uid: &str) {
    match step {
        Step::Sbi { call, enclave } => {
            a.li(Reg::A7, call.id());
            a.li(Reg::A0, *enclave);
            a.ecall();
        }
        Step::Load { addr, width } => {
            a.li(Reg::T4, *addr);
            a.load(*width, Reg::A5, Reg::T4, 0);
        }
        Step::ConsumeLast => {
            a.addi(Reg::A6, Reg::A5, 1);
        }
        Step::Store { addr, value, width } => {
            a.li(Reg::T4, *addr);
            a.li(Reg::T5, *value);
            a.store(*width, Reg::T5, Reg::T4, 0);
        }
        Step::CsrRead { csr } => {
            a.csrr(Reg::A5, *csr);
        }
        Step::CsrWrite { csr, value } => {
            a.li(Reg::T4, *value);
            a.csrw(*csr, Reg::T4);
        }
        Step::SetSatpSv39 { root_pa } => {
            a.li(Reg::T4, teesec_isa::csr::Satp::sv39(*root_pa).0);
            a.csrw(teesec_isa::csr::SATP, Reg::T4);
        }
        Step::SaveSatp => {
            a.csrr(Reg::S10, teesec_isa::csr::SATP);
        }
        Step::RestoreSatp => {
            a.csrw(teesec_isa::csr::SATP, Reg::S10);
        }
        Step::SfenceVma => {
            a.sfence_vma();
        }
        Step::BranchAtOffset { offset, taken } => {
            // Pad with nops until the branch lands at the requested offset.
            let target = region_base + offset;
            assert!(
                a.cursor() + 4 <= target,
                "branch offset {offset:#x} already passed (cursor {:#x})",
                a.cursor()
            );
            // One setup instruction precedes the branch: place it so the
            // *branch* sits exactly at the offset.
            while a.cursor() + 4 < target {
                a.nop();
            }
            a.addi(Reg::T4, Reg::ZERO, if *taken { 0 } else { 1 });
            debug_assert_eq!(a.cursor(), target);
            let after = format!("ba_{uid}");
            a.beqz(Reg::T4, &after); // taken iff t4 == 0
            a.nop();
            a.label(after);
        }
        Step::FetchProbe { addr } => {
            let after = format!("fp_{uid}");
            a.la(Reg::S11, &after);
            a.li(Reg::T4, *addr);
            a.jalr(Reg::RA, Reg::T4, 0);
            a.label(after);
        }
        Step::ReadCycle => {
            a.csrr(Reg::S9, teesec_isa::csr::CYCLE);
        }
        Step::Nops(n) => {
            for _ in 0..*n {
                a.nop();
            }
        }
    }
}

/// Convenience: the layout every lowering shares.
pub fn default_layout() -> Layout {
    Layout::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use teesec_isa::inst::Inst;

    #[test]
    fn lower_basic_steps_assembles() {
        let mut a = Assembler::new(0x8010_0000);
        lower_steps(
            &mut a,
            &[
                Step::Sbi {
                    call: SbiCall::RunEnclave,
                    enclave: 0,
                },
                Step::Load {
                    addr: 0x8040_2000,
                    width: MemWidth::D,
                },
                Step::ConsumeLast,
                Step::Store {
                    addr: 0x8030_0000,
                    value: 7,
                    width: MemWidth::W,
                },
                Step::ReadCycle,
                Step::Nops(3),
            ],
            0x8010_0000,
            "t",
        );
        let words = a.assemble().expect("assemble");
        assert!(words.len() > 8);
        // All words decode.
        for w in words {
            Inst::decode(w).expect("decodable");
        }
    }

    #[test]
    fn branch_at_offset_lands_exactly() {
        let mut a = Assembler::new(0x8010_0000);
        lower_steps(
            &mut a,
            &[Step::BranchAtOffset {
                offset: 0x40,
                taken: true,
            }],
            0x8010_0000,
            "t",
        );
        let words = a.assemble().expect("assemble");
        // The word at offset 0x40 must be the conditional branch.
        let w = words[0x40 / 4];
        assert!(
            matches!(Inst::decode(w), Ok(Inst::Branch { .. })),
            "{w:#010x}"
        );
    }

    #[test]
    #[should_panic(expected = "already passed")]
    fn branch_at_passed_offset_panics() {
        let mut a = Assembler::new(0x8010_0000);
        for _ in 0..32 {
            a.nop();
        }
        lower_steps(
            &mut a,
            &[Step::BranchAtOffset {
                offset: 0x10,
                taken: true,
            }],
            0x8010_0000,
            "t",
        );
    }

    #[test]
    fn fetch_probe_sets_recovery_point() {
        let mut a = Assembler::new(0x8010_0000);
        lower_steps(
            &mut a,
            &[Step::FetchProbe { addr: 0x8040_0000 }],
            0x8010_0000,
            "t",
        );
        let words = a.assemble().expect("assemble");
        // la (2 words: auipc+addi) + li + jalr.
        assert!(words.len() >= 4);
    }

    #[test]
    fn testcase_accumulates_steps() {
        let mut tc = TestCase::new("demo", AccessPath::LoadL1Hit);
        tc.push(Actor::Host, Step::ConsumeLast);
        tc.push(Actor::Enclave(0), Step::Nops(1));
        tc.push(Actor::Enclave(1), Step::Nops(2));
        assert_eq!(tc.step_count(), 3);
        assert_eq!(tc.host_steps.len(), 1);
        assert_eq!(tc.enclave_steps[1].len(), 1);
    }
}
