//! TEESec: pre-silicon vulnerability discovery for trusted execution
//! environments — a full Rust reproduction of the ISCA 2023 paper.
//!
//! The framework jointly verifies a TEE (a Keystone-like security monitor,
//! `teesec-tee`) and the microarchitecture underneath it (a cycle-driven
//! out-of-order RISC-V core model, `teesec-uarch`) against two security
//! principles:
//!
//! * **P1** — no enclave data may be fetched into or remain in CPU
//!   microarchitectural state when the CPU is not in trusted enclave
//!   execution mode;
//! * **P2** — microarchitectural state influenced by enclave code must not
//!   affect the execution of any non-enclave code.
//!
//! The three framework components mirror the paper's architecture:
//!
//! 1. [`plan`] — the **Verification Plan**: storage-element inventory,
//!    the thirteen data + two metadata access paths ([`paths`]) with their
//!    permission-check policies, and the TEE API profile;
//! 2. [`gadgets`] / [`assemble`] / [`fuzz`] — the **Test Gadget
//!    Constructor**: 8 setup + 12 helper + 15 access gadgets composed into
//!    valid test cases by an execution-model-aware assembler and widened by
//!    a parameter fuzzer (585 cases by default, as in Table 2);
//! 3. [`runner`] / [`checker`] — the **TEESec Checker**: runs each case on
//!    the simulated platform and scans the per-cycle trace plus the final
//!    microarchitectural snapshot for secrets (hash-of-address values,
//!    [`secret`]) and metadata residue, classifying findings into the
//!    paper's D1–D8 / M1–M2 cases ([`report`]).
//!
//! [`campaign`] drives the full generate → simulate → check pipeline and
//! produces the paper's Table 3 vulnerability matrix; [`engine`] executes
//! corpora on a fault-isolated, work-stealing worker pool with a JSONL
//! event stream and aggregate metrics. Deep observability rides on top:
//! [`provenance`] reconstructs each finding's *secret write → retention →
//! observation* chain from the trace, [`coverage`] maps which of the
//! plan's structure × transition × observer cells a campaign actually
//! exercised (plus secret-residency windows), and [`metrics`] exposes
//! campaign aggregates as Prometheus-text and JSON snapshots.
//!
//! # Example
//!
//! ```no_run
//! use teesec::campaign::{vulnerability_matrix, Campaign};
//! use teesec::fuzz::Fuzzer;
//! use teesec_uarch::CoreConfig;
//!
//! let (boom, _) = Campaign::new(CoreConfig::boom(), Fuzzer::with_target(60)).run();
//! let (xs, _) = Campaign::new(CoreConfig::xiangshan(), Fuzzer::with_target(60)).run();
//! println!("{}", vulnerability_matrix(&[&boom, &xs]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assemble;
pub mod campaign;
pub mod checker;
pub mod cover;
pub mod coverage;
pub mod diff;
pub mod engine;
pub mod fuzz;
pub mod gadgets;
pub mod metrics;
pub mod minimize;
pub mod paths;
pub mod plan;
pub mod provenance;
pub mod report;
pub mod runner;
pub mod secret;
pub mod simlog;
pub mod stream;
pub mod testcase;

pub use campaign::{Campaign, CampaignResult};
pub use checker::{check_case, check_case_coverage};
pub use cover::{CoverKind, CoverageKey, CoverageMap};
pub use coverage::{
    CaseCoverage, CellKey, CoverageCell, ObserverKind, PlanCoverage, ResidencyWindow,
    StructureResidency, TransitionPoint,
};
pub use diff::{
    diff_case, diff_corpus, diff_corpus_traced, diff_corpus_with, DiffOptions, DiffSummary,
    DiffVerdict, Divergence,
};
pub use engine::{
    CheckpointOptions, DiffMetrics, Engine, EngineEvent, EngineMetrics, EngineOptions, EventSink,
    ObsMetrics,
};
pub use fuzz::Fuzzer;
pub use metrics::{campaign_snapshot, live_campaign_snapshot};
pub use minimize::{minimize_case, Minimized};
pub use paths::AccessPath;
pub use plan::VerificationPlan;
pub use provenance::{ProvenanceChain, ProvenanceHop};
pub use report::{CheckReport, Finding, LeakClass, Principle};
pub use runner::{
    run_case, run_case_opts, BuildKind, RunOptions, SnapshotCache, SnapshotCacheMetrics,
};
pub use stream::StreamingChecker;
pub use testcase::TestCase;
