//! Secret seeding and tracing.
//!
//! Following the paper's `Fill_Enc_Mem()` design, every seeded secret is a
//! *hash of the memory address where it is stored*, so any value the checker
//! finds in the simulation log can be traced back to the exact enclave
//! location it escaped from (paper §4.2).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use teesec_uarch::trace::Domain;

/// The mixing salt (any odd constant works; fixed for reproducibility).
const SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// The secret value stored at `addr` (splitmix64 of the salted address —
/// high entropy, so verbatim matches in the log are conclusive).
pub fn secret_for(addr: u64) -> u64 {
    let mut z = addr ^ SALT;
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One cataloged secret: where it lives and whose it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SecretRecord {
    /// Physical address the secret was seeded at.
    pub addr: u64,
    /// The 64-bit secret value.
    pub value: u64,
    /// Owning domain (whose confidentiality it is).
    pub owner: Domain,
}

/// The catalog of every secret seeded into a test image.
///
/// The checker consults it to classify raw values found in the trace.
///
/// ```
/// use teesec::secret::{secret_for, SecretCatalog};
/// use teesec_uarch::trace::Domain;
///
/// let mut catalog = SecretCatalog::new();
/// catalog.seed(0x8040_2000, Domain::Enclave(0));
/// let hit = catalog.identify(secret_for(0x8040_2000)).expect("cataloged");
/// assert_eq!(hit.addr, 0x8040_2000);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SecretCatalog {
    records: Vec<SecretRecord>,
    #[serde(skip)]
    by_value: HashMap<u64, usize>,
}

impl SecretCatalog {
    /// Creates an empty catalog.
    pub fn new() -> SecretCatalog {
        SecretCatalog::default()
    }

    /// Seeds one address-derived secret and records it.
    pub fn seed(&mut self, addr: u64, owner: Domain) -> SecretRecord {
        let rec = SecretRecord {
            addr,
            value: secret_for(addr),
            owner,
        };
        self.by_value.insert(rec.value, self.records.len());
        self.records.push(rec);
        rec
    }

    /// Seeds a whole region at 8-byte stride.
    pub fn seed_region(&mut self, base: u64, len: u64, owner: Domain) {
        let mut a = base;
        while a + 8 <= base + len {
            self.seed(a, owner);
            a += 8;
        }
    }

    /// Looks up a 64-bit value; returns the record if it is a cataloged
    /// secret.
    pub fn identify(&self, value: u64) -> Option<SecretRecord> {
        if value == 0 {
            return None;
        }
        self.by_value.get(&value).map(|&i| self.records[i])
    }

    /// Scans a byte buffer for any cataloged secret at every 8-byte-aligned
    /// window, returning (offset, record) pairs.
    pub fn scan_bytes(&self, data: &[u8]) -> Vec<(usize, SecretRecord)> {
        let mut hits = Vec::new();
        let mut off = 0;
        while off + 8 <= data.len() {
            let v = u64::from_le_bytes(data[off..off + 8].try_into().expect("8 bytes"));
            if let Some(rec) = self.identify(v) {
                hits.push((off, rec));
            }
            off += 8;
        }
        hits
    }

    /// All records.
    pub fn records(&self) -> &[SecretRecord] {
        &self.records
    }

    /// Number of seeded secrets.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing was seeded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Rebuilds the value index (after deserialization).
    pub fn reindex(&mut self) {
        self.by_value = self
            .records
            .iter()
            .enumerate()
            .map(|(i, r)| (r.value, i))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secrets_are_address_unique() {
        let a = secret_for(0x8040_0000);
        let b = secret_for(0x8040_0008);
        assert_ne!(a, b);
        assert_eq!(a, secret_for(0x8040_0000), "deterministic");
        assert_ne!(a, 0);
    }

    #[test]
    fn catalog_identifies_and_traces_back() {
        let mut c = SecretCatalog::new();
        c.seed_region(0x8040_2000, 64, Domain::Enclave(0));
        assert_eq!(c.len(), 8);
        let rec = c.identify(secret_for(0x8040_2018)).expect("known secret");
        assert_eq!(rec.addr, 0x8040_2018);
        assert_eq!(rec.owner, Domain::Enclave(0));
        assert_eq!(c.identify(0x1234), None);
        assert_eq!(c.identify(0), None);
    }

    #[test]
    fn scan_bytes_finds_embedded_secret() {
        let mut c = SecretCatalog::new();
        let rec = c.seed(0x8040_2000, Domain::Enclave(1));
        let mut line = vec![0u8; 64];
        line[24..32].copy_from_slice(&rec.value.to_le_bytes());
        let hits = c.scan_bytes(&line);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 24);
        assert_eq!(hits[0].1.addr, 0x8040_2000);
    }

    #[test]
    fn reindex_restores_lookup() {
        let mut c = SecretCatalog::new();
        c.seed(0x8040_2000, Domain::SecurityMonitor);
        let json = serde_json::to_string(&c).expect("serialize");
        let mut back: SecretCatalog = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(
            back.identify(secret_for(0x8040_2000)),
            None,
            "index skipped"
        );
        back.reindex();
        assert!(back.identify(secret_for(0x8040_2000)).is_some());
    }
}
