//! Textual simulation-log rendering — the analog of the paper artifact's
//! `SimLog.txt` (the instrumented simulator's per-cycle dump that
//! `Checker.py` parses).

use std::fmt::Write as _;

use teesec_uarch::trace::{Trace, TraceEventKind};

/// Renders the full trace as a line-per-event text log.
///
/// Format: `cycle <n> [<priv>/<domain>] <structure>: <event>` — stable
/// enough to diff across runs of a deterministic test case.
pub fn render_simlog(trace: &Trace) -> String {
    let mut out = String::new();
    for e in trace.iter_events() {
        let _ = write!(
            out,
            "cycle {:>8} [{}/{:?}] {:<16} ",
            e.cycle,
            e.priv_level,
            e.domain,
            e.structure.display_name()
        );
        match &e.kind {
            TraceEventKind::Fill {
                addr,
                data,
                purpose,
            } => {
                let mut head_bytes = [0u8; 8];
                let n = data.len().min(8);
                head_bytes[..n].copy_from_slice(&data[..n]);
                let head = u64::from_le_bytes(head_bytes);
                let _ = writeln!(
                    out,
                    "FILL line={addr:#x} purpose={purpose:?} bytes={} head={head:#018x}",
                    data.len()
                );
            }
            TraceEventKind::Write { index, value, tag } => {
                let _ = write!(out, "WRITE idx={index:#x} value={value:#x}");
                if let Some(t) = tag {
                    let _ = write!(out, " tag={t:#x}");
                }
                let _ = writeln!(out);
            }
            TraceEventKind::Read { index, value } => {
                let _ = writeln!(out, "READ idx={index:#x} value={value:#x}");
            }
            TraceEventKind::Flush => {
                let _ = writeln!(out, "FLUSH");
            }
            TraceEventKind::CounterBump { event } => {
                let _ = writeln!(out, "BUMP {event:?}");
            }
            TraceEventKind::DomainSwitch { to } => {
                let _ = writeln!(out, "DOMAIN-SWITCH -> {to:?}");
            }
        }
        if let Some(pc) = e.pc {
            // Append the PC on the same line style the artifact used.
            let nl = out.pop();
            debug_assert_eq!(nl, Some('\n'));
            let _ = writeln!(out, " pc={pc:#x}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use teesec_isa::priv_level::PrivLevel;
    use teesec_uarch::trace::{Domain, Structure, TraceEvent};

    #[test]
    fn renders_every_event_kind() {
        let mut t = Trace::new();
        let base = |kind| TraceEvent {
            cycle: 42,
            priv_level: PrivLevel::Supervisor,
            domain: Domain::Enclave(1),
            pc: Some(0x8010_0000),
            structure: Structure::Lfb,
            kind,
        };
        t.record(base(TraceEventKind::Fill {
            addr: 0x8040_0000,
            data: vec![0xAB; 64],
            purpose: teesec_uarch::trace::FillPurpose::Prefetch,
        }));
        t.record(base(TraceEventKind::Write {
            index: 5,
            value: 0x123,
            tag: Some(7),
        }));
        t.record(base(TraceEventKind::Read {
            index: 5,
            value: 0x123,
        }));
        t.record(base(TraceEventKind::Flush));
        t.record(base(TraceEventKind::CounterBump {
            event: teesec_uarch::trace::HpcEvent::L1dMiss,
        }));
        t.record(base(TraceEventKind::DomainSwitch {
            to: Domain::Untrusted,
        }));
        let log = render_simlog(&t);
        assert_eq!(log.lines().count(), 6);
        assert!(log.contains("FILL line=0x80400000 purpose=Prefetch"));
        assert!(log.contains("WRITE idx=0x5 value=0x123 tag=0x7"));
        assert!(log.contains("BUMP L1dMiss"));
        assert!(log.contains("DOMAIN-SWITCH -> Untrusted"));
        assert!(log.contains("pc=0x80100000"));
        assert!(log.contains("[S/Enclave(1)]"));
    }

    #[test]
    fn empty_trace_renders_empty() {
        assert!(render_simlog(&Trace::new()).is_empty());
    }

    #[test]
    fn short_fill_line_keeps_its_head_bytes() {
        // Regression: fills shorter than 8 bytes used to render head=0x0
        // because the failed `try_into` fell back to a zeroed array.
        let mut t = Trace::new();
        t.record(TraceEvent {
            cycle: 1,
            priv_level: PrivLevel::Machine,
            domain: Domain::Untrusted,
            pc: None,
            structure: Structure::Lfb,
            kind: TraceEventKind::Fill {
                addr: 0x8040_0040,
                data: vec![0xCD, 0xAB, 0x34, 0x12],
                purpose: teesec_uarch::trace::FillPurpose::Demand,
            },
        });
        let log = render_simlog(&t);
        assert!(
            log.contains("head=0x000000001234abcd"),
            "short fill must render its little-endian head bytes, got: {log}"
        );
        assert!(!log.contains("head=0x0000000000000000"));
    }
}
