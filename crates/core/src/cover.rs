//! Microarchitectural coverage maps for coverage-guided fuzzing.
//!
//! The core already reports what every run touched — per-structure fill,
//! write, read and flush counts plus exit occupancy ([`UarchCounters`]).
//! A coverage *bucket* coarsens one of those counts into its log2 band:
//! `(structure, event kind, ⌊log2(count)⌋)`. Reaching a structure at all,
//! and then reaching it an order of magnitude harder, are distinct buckets —
//! the standard AFL-style bucketing, but over microarchitectural state
//! rather than branch edges. The fuzzer keeps any input that lights up a
//! bucket no earlier input lit ([`crate::fuzz::CoverageFuzzer`]).

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use teesec_uarch::counters::UarchCounters;
use teesec_uarch::Structure;

/// Which counter of a structure a bucket tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CoverKind {
    /// Line/entry fills.
    Fill,
    /// Scalar writes.
    Write,
    /// Reads.
    Read,
    /// Flush/invalidate events.
    Flush,
    /// Valid entries at exit (residue surface).
    Occupancy,
}

impl CoverKind {
    /// All kinds, in bucket order.
    pub fn all() -> &'static [CoverKind] {
        &[
            CoverKind::Fill,
            CoverKind::Write,
            CoverKind::Read,
            CoverKind::Flush,
            CoverKind::Occupancy,
        ]
    }
}

/// One coverage bucket: a structure × event-kind pair at a log2 intensity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CoverageKey {
    /// The microarchitectural structure.
    pub structure: Structure,
    /// The event kind.
    pub kind: CoverKind,
    /// `⌊log2(count)⌋` of the observed count (0 for a count of 1).
    pub bucket: u8,
}

/// `⌊log2(n)⌋` bucketing; returns `None` for zero counts (no coverage).
fn bucket_of(n: u64) -> Option<u8> {
    if n == 0 {
        None
    } else {
        Some(63 - n.leading_zeros() as u8)
    }
}

/// A set of reached coverage buckets.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageMap {
    keys: BTreeSet<CoverageKey>,
}

impl CoverageMap {
    /// An empty map.
    pub fn new() -> CoverageMap {
        CoverageMap::default()
    }

    /// Buckets lit by one run's harvested counters. Every reached count `n`
    /// lights all buckets `0..=⌊log2(n)⌋` — a harder-hit structure strictly
    /// covers a lighter-hit one, so "more buckets" always means "reached
    /// new intensity or new structure", never just different counts.
    pub fn from_counters(c: &UarchCounters) -> CoverageMap {
        let mut map = CoverageMap::new();
        for sc in &c.structures {
            let counts = [
                (CoverKind::Fill, sc.fills),
                (CoverKind::Write, sc.writes),
                (CoverKind::Read, sc.reads),
                (CoverKind::Flush, sc.flushes),
                (CoverKind::Occupancy, sc.occupancy_at_exit),
            ];
            for (kind, n) in counts {
                if let Some(top) = bucket_of(n) {
                    for b in 0..=top {
                        map.keys.insert(CoverageKey {
                            structure: sc.structure,
                            kind,
                            bucket: b,
                        });
                    }
                }
            }
        }
        map
    }

    /// Merges `other` into `self`, returning how many buckets were new.
    pub fn merge(&mut self, other: &CoverageMap) -> usize {
        let before = self.keys.len();
        self.keys.extend(other.keys.iter().copied());
        self.keys.len() - before
    }

    /// Number of distinct buckets reached.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no bucket has been reached.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Whether a bucket is present.
    pub fn contains(&self, key: &CoverageKey) -> bool {
        self.keys.contains(key)
    }

    /// Iterates the reached buckets in order.
    pub fn keys(&self) -> impl Iterator<Item = &CoverageKey> {
        self.keys.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teesec_uarch::counters::StructureCounters;

    fn counters_with(structure: Structure, fills: u64, reads: u64) -> UarchCounters {
        UarchCounters {
            cycles: 100,
            instructions_retired: 50,
            trace_events: fills + reads,
            counter_bumps: 0,
            domain_switches: 0,
            structures: vec![StructureCounters {
                structure,
                fills,
                writes: 0,
                reads,
                flushes: 0,
                occupancy_at_exit: 0,
                capacity: 64,
            }],
        }
    }

    #[test]
    fn zero_counts_light_nothing() {
        let map = CoverageMap::from_counters(&counters_with(Structure::L1d, 0, 0));
        assert!(map.is_empty());
    }

    #[test]
    fn buckets_are_log2_and_cumulative() {
        // 5 fills → buckets 0..=2 (log2(5)=2); 1 read → bucket 0.
        let map = CoverageMap::from_counters(&counters_with(Structure::L1d, 5, 1));
        assert_eq!(map.len(), 4);
        assert!(map.contains(&CoverageKey {
            structure: Structure::L1d,
            kind: CoverKind::Fill,
            bucket: 2
        }));
        assert!(!map.contains(&CoverageKey {
            structure: Structure::L1d,
            kind: CoverKind::Fill,
            bucket: 3
        }));
    }

    #[test]
    fn harder_hit_strictly_covers_lighter_hit() {
        let light = CoverageMap::from_counters(&counters_with(Structure::Dtlb, 3, 0));
        let hard = CoverageMap::from_counters(&counters_with(Structure::Dtlb, 300, 0));
        let mut merged = hard.clone();
        assert_eq!(merged.merge(&light), 0, "light ⊆ hard");
        let mut merged2 = light.clone();
        assert!(merged2.merge(&hard) > 0, "hard ⊄ light");
    }

    #[test]
    fn merge_counts_novel_buckets_only() {
        let a = CoverageMap::from_counters(&counters_with(Structure::L1d, 2, 0));
        let b = CoverageMap::from_counters(&counters_with(Structure::L2, 2, 0));
        let mut m = CoverageMap::new();
        assert_eq!(m.merge(&a), a.len());
        assert_eq!(m.merge(&a), 0);
        assert_eq!(m.merge(&b), b.len());
        assert_eq!(m.len(), a.len() + b.len());
    }

    #[test]
    fn map_roundtrips_through_serde() {
        let map = CoverageMap::from_counters(&counters_with(Structure::Ftb, 9, 2));
        let json = serde_json::to_string(&map).unwrap();
        let back: CoverageMap = serde_json::from_str(&json).unwrap();
        assert_eq!(back, map);
    }
}
