//! The verification plan (paper §4.1): a systematic profile of the design
//! under test — its storage elements, every memory access path with its
//! permission-check policy, and the TEE software API surface.

use serde::{Deserialize, Serialize};

use teesec_tee::enclave::EnclaveState;
use teesec_tee::SbiCall;
use teesec_uarch::config::CoreConfig;
use teesec_uarch::introspect::StorageInventory;

use crate::coverage::CellKey;
use crate::paths::{AccessPath, Initiation, PayloadKind, PermissionPolicy};

/// One profiled access path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathProfile {
    /// The path.
    pub path: AccessPath,
    /// Explicit or implicit.
    pub initiation: Initiation,
    /// Data or metadata.
    pub payload: PayloadKind,
    /// When (if ever) permissions are checked on this design.
    pub permission_policy: PermissionPolicy,
}

/// One profiled TEE API function.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApiProfile {
    /// The SBI call.
    pub call: SbiCall,
    /// Whether the enclave or the host issues it.
    pub from_enclave: bool,
    /// States from which the call is legal.
    pub legal_from: Vec<EnclaveState>,
    /// Whether the call performs a PMP reconfiguration (a domain switch
    /// whose boundary the checker verifies).
    pub switches_domain: bool,
}

/// The complete verification plan for one design + TEE combination.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerificationPlan {
    /// Design name.
    pub design: String,
    /// Storage-element inventory (the automated Yosys-pass analog).
    pub storage: StorageInventory,
    /// All access paths present on this design, with their policies.
    pub paths: Vec<PathProfile>,
    /// The TEE software API surface.
    pub api: Vec<ApiProfile>,
}

impl VerificationPlan {
    /// Profiles a design into its verification plan.
    pub fn profile(cfg: &CoreConfig) -> VerificationPlan {
        let storage = StorageInventory::profile(cfg);
        let paths = AccessPath::all()
            .iter()
            .copied()
            .filter(|p| p.exists_on(cfg))
            .map(|path| PathProfile {
                path,
                initiation: path.initiation(),
                payload: path.payload(),
                permission_policy: path.permission_policy(cfg),
            })
            .collect();
        let api = SbiCall::all()
            .iter()
            .copied()
            .map(|call| {
                let legal_from = [
                    EnclaveState::Fresh,
                    EnclaveState::Created,
                    EnclaveState::Running,
                    EnclaveState::Stopped,
                    EnclaveState::Exited,
                    EnclaveState::Destroyed,
                ]
                .into_iter()
                .filter(|s| s.apply(call).is_ok())
                .collect();
                ApiProfile {
                    call,
                    from_enclave: call.from_enclave(),
                    legal_from,
                    switches_domain: matches!(
                        call,
                        SbiCall::RunEnclave
                            | SbiCall::ResumeEnclave
                            | SbiCall::StopEnclave
                            | SbiCall::ExitEnclave
                    ),
                }
            })
            .collect();
        VerificationPlan {
            design: cfg.name.clone(),
            storage,
            paths,
            api,
        }
    }

    /// Paths with no (or lazy) permission checking — the priority targets
    /// of §4.1.2.
    pub fn weakly_checked_paths(&self) -> impl Iterator<Item = &PathProfile> {
        self.paths.iter().filter(|p| {
            matches!(
                p.permission_policy,
                PermissionPolicy::Unchecked | PermissionPolicy::CheckedLazy
            )
        })
    }

    /// Number of access paths in the plan.
    pub fn path_count(&self) -> usize {
        self.paths.len()
    }

    /// Every coverage-matrix cell this plan declares: each inventoried
    /// storage element crossed with each feasible (transition point,
    /// observer privilege) pair — the denominator of
    /// `teesec_plan_coverage_ratio` and the universe the campaign gap
    /// list is computed against.
    pub fn coverage_cells(&self) -> impl Iterator<Item = CellKey> + '_ {
        use crate::coverage::TransitionPoint;
        self.storage.elements.iter().flat_map(|el| {
            TransitionPoint::all().iter().flat_map(move |&transition| {
                transition.observers().iter().map(move |&observer| CellKey {
                    structure: el.structure,
                    transition,
                    observer,
                })
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_profiles_both_designs() {
        let boom = VerificationPlan::profile(&CoreConfig::boom());
        let xs = VerificationPlan::profile(&CoreConfig::xiangshan());
        // BOOM has the prefetch path but no SB-forward path; XS vice versa.
        assert!(boom
            .paths
            .iter()
            .any(|p| p.path == AccessPath::PrefetchNextLine));
        assert!(!boom
            .paths
            .iter()
            .any(|p| p.path == AccessPath::LoadSbForward));
        assert!(!xs
            .paths
            .iter()
            .any(|p| p.path == AccessPath::PrefetchNextLine));
        assert!(xs.paths.iter().any(|p| p.path == AccessPath::LoadSbForward));
    }

    #[test]
    fn weakly_checked_paths_differ_by_design() {
        let boom = VerificationPlan::profile(&CoreConfig::boom());
        let xs = VerificationPlan::profile(&CoreConfig::xiangshan());
        let boom_weak: Vec<AccessPath> = boom.weakly_checked_paths().map(|p| p.path).collect();
        let xs_weak: Vec<AccessPath> = xs.weakly_checked_paths().map(|p| p.path).collect();
        // BOOM's poisoned-root PTW is unchecked; XiangShan's is pre-checked.
        assert!(boom_weak.contains(&AccessPath::PtwPoisonedRoot));
        assert!(!xs_weak.contains(&AccessPath::PtwPoisonedRoot));
        // Demand loads are lazily checked on both.
        assert!(boom_weak.contains(&AccessPath::LoadL1Hit));
        assert!(xs_weak.contains(&AccessPath::LoadL1Hit));
    }

    #[test]
    fn api_profile_matches_lifecycle() {
        let plan = VerificationPlan::profile(&CoreConfig::boom());
        let destroy = plan
            .api
            .iter()
            .find(|a| a.call == SbiCall::DestroyEnclave)
            .expect("destroy");
        assert_eq!(
            destroy.legal_from,
            vec![EnclaveState::Stopped, EnclaveState::Exited],
            "destroy only from stopped or exited (paper §7.1.3)"
        );
        let run = plan
            .api
            .iter()
            .find(|a| a.call == SbiCall::RunEnclave)
            .expect("run");
        assert!(run.switches_domain);
        let stop = plan
            .api
            .iter()
            .find(|a| a.call == SbiCall::StopEnclave)
            .expect("stop");
        assert!(stop.from_enclave);
    }

    #[test]
    fn plan_serializes() {
        let plan = VerificationPlan::profile(&CoreConfig::boom());
        let json = serde_json::to_string_pretty(&plan).expect("serialize");
        let back: VerificationPlan = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, plan);
    }
}
