//! Lowers test cases onto the Keystone platform and executes them on the
//! cycle-driven core — the "RTL simulation" phase of the framework.
//!
//! Three execution paths exist:
//!
//! - **fresh**: assemble the security monitor, build page tables, and
//!   simulate the SM boot from reset for every case;
//! - **boot-forked**: cases sharing a boot configuration fork a
//!   copy-on-write [`PlatformSnapshot`] captured once per configuration
//!   just before the first host fetch ([`SnapshotCache`]), skipping the
//!   SM assembly, page-table build, and boot simulation entirely;
//! - **prefix-forked**: interrupt-timing sweep cases — identical except
//!   for the cycle their external interrupt lands — fork a checkpoint of
//!   the fully built platform *run up to the first interrupt candidate*,
//!   skipping the shared setup-gadget prefix's simulation entirely and
//!   re-simulating only the post-interrupt tail.
//!
//! All paths produce cycle-exact identical platforms (asserted by the
//! `stream_equivalence` suite), so callers opt in purely for speed.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use teesec_tee::layout;
use teesec_tee::platform::{BuildError, HostVm, Platform, PlatformBuilder, PlatformSnapshot};
use teesec_tee::sm::SmOptions;
use teesec_trace::TraceCtx;
use teesec_uarch::config::CoreConfig;
use teesec_uarch::core::RunExit;
use teesec_uarch::trace::TraceSink;

use crate::testcase::{lower_steps, TestCase};

/// How a case's platform came to be: the snapshot-cache tier (if any)
/// that produced it. Carried on [`RunOutcome`] so traces and events can
/// attribute build cost to the right path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildKind {
    /// Assembled and booted from reset (no cache, or cache bypassed).
    Fresh,
    /// This case captured the boot snapshot for its configuration.
    BootCaptured,
    /// Forked an existing boot snapshot.
    BootForked,
    /// This case captured the setup-prefix checkpoint for its sweep
    /// family.
    PrefixCaptured,
    /// Forked an existing setup-prefix checkpoint.
    PrefixForked,
}

impl BuildKind {
    /// Short label for trace args and metrics (`fresh`, `boot_fork`, ...).
    pub fn label(self) -> &'static str {
        match self {
            BuildKind::Fresh => "fresh",
            BuildKind::BootCaptured => "boot_capture",
            BuildKind::BootForked => "boot_fork",
            BuildKind::PrefixCaptured => "prefix_capture",
            BuildKind::PrefixForked => "prefix_fork",
        }
    }
}

/// The product of running one test case.
#[derive(Debug)]
pub struct RunOutcome {
    /// The platform after the run (trace, caches, CSRs all inspectable).
    pub platform: Platform,
    /// How the run ended.
    pub exit: RunExit,
    /// Cycles consumed.
    pub cycles: u64,
    /// Wall-clock cost of assembling and building the platform, separated
    /// from simulation proper for the engine's per-phase histograms.
    pub build_us: u128,
    /// Which build path produced the platform.
    pub build: BuildKind,
}

/// Builds and runs `tc` on a core configured by `cfg`.
///
/// # Errors
///
/// Propagates [`BuildError`] when the lowered program does not assemble or
/// overflows a region.
pub fn run_case(tc: &TestCase, cfg: &CoreConfig) -> Result<RunOutcome, BuildError> {
    run_case_budgeted(tc, cfg, None)
}

/// [`run_case`] under a simulated-cycle watchdog: the effective cycle limit
/// is `min(tc.max_cycles, budget)`, so a budget-blown case exits with
/// [`RunExit::CycleLimit`] instead of running out its full `max_cycles`.
///
/// # Errors
///
/// Propagates [`BuildError`] exactly as [`run_case`] does.
pub fn run_case_budgeted(
    tc: &TestCase,
    cfg: &CoreConfig,
    budget: Option<u64>,
) -> Result<RunOutcome, BuildError> {
    run_case_opts(
        tc,
        cfg,
        RunOptions {
            budget,
            ..RunOptions::default()
        },
    )
}

/// Execution options for [`run_case_opts`].
pub struct RunOptions<'c> {
    /// Simulated-cycle watchdog (see [`run_case_budgeted`]).
    pub budget: Option<u64>,
    /// Fork the platform from a shared boot snapshot when one applies.
    pub snapshot_cache: Option<&'c SnapshotCache>,
    /// Trace sink receiving every event online (e.g. a
    /// [`StreamingChecker`](crate::stream::StreamingChecker)). When the
    /// platform is snapshot-forked, events already simulated before the
    /// fork are replayed into the sink first, so it observes the exact
    /// sequence a fresh run would have produced.
    pub sink: Option<Box<dyn TraceSink>>,
    /// Keep buffering trace events in memory. Disable for streaming runs:
    /// the sink still sees every event, but peak retained events stay
    /// O(boot prefix) instead of O(simulated cycles).
    pub buffer_trace: bool,
    /// Span-recording context: when its tracer is set, the run emits
    /// `build` and `simulate` spans (under the context's parent span)
    /// plus periodic `sim_cycles` counter samples.
    pub trace: TraceCtx<'c>,
    /// Force the simulator fast path on/off for this run (`None` keeps
    /// the process default, see `teesec_uarch::fast_path_default`). Both
    /// settings are byte-identical in every checker observable; off is
    /// the reference path the equivalence harness compares against.
    pub fast_path: Option<bool>,
}

impl Default for RunOptions<'_> {
    fn default() -> Self {
        RunOptions {
            budget: None,
            snapshot_cache: None,
            sink: None,
            buffer_trace: true,
            trace: TraceCtx::default(),
            fast_path: None,
        }
    }
}

/// Simulated cycles between `sim_cycles` counter samples on a traced run
/// (a handful of samples for a typical case, so sampling cost stays
/// negligible next to simulation).
const SIM_SAMPLE_CYCLES: u64 = 50_000;

/// [`run_case`] with full control over budget, snapshot reuse, and
/// streaming ([`RunOptions`]).
///
/// # Errors
///
/// Propagates [`BuildError`] exactly as [`run_case`] does.
pub fn run_case_opts(
    tc: &TestCase,
    cfg: &CoreConfig,
    mut opts: RunOptions<'_>,
) -> Result<RunOutcome, BuildError> {
    let build_start = std::time::Instant::now();
    let mut build_span = opts.trace.span("build");
    let limit = opts.budget.map_or(tc.max_cycles, |b| b.min(tc.max_cycles));
    let (mut platform, build) = match opts.snapshot_cache {
        Some(cache) => cache.platform_for(tc, cfg, limit)?,
        None => (case_builder(tc, cfg).build()?, BuildKind::Fresh),
    };
    if let Some(on) = opts.fast_path {
        platform.core.set_fast_path(on);
    }
    if let Some(mut sink) = opts.sink.take() {
        // A forked platform's buffer already holds the boot-prefix events
        // (a fresh build's is empty): replay them so the sink sees the
        // full event sequence from reset.
        for e in platform.core.trace.iter_events() {
            sink.on_event(e);
        }
        platform.core.trace.set_sink(sink);
    }
    if !opts.buffer_trace {
        platform.core.trace.set_buffering(false);
    }
    build_span.arg("cache", build.label());
    drop(build_span);
    if matches!(build, BuildKind::BootCaptured | BuildKind::PrefixCaptured) {
        opts.trace.mark("snapshot_capture");
    }
    let build_us = build_start.elapsed().as_micros();
    let exit = if opts.trace.active() {
        let mut sim_span = opts.trace.span("simulate");
        let tctx = opts.trace;
        let exit = platform.run_batched(limit, SIM_SAMPLE_CYCLES, &mut |core| {
            tctx.counter_sample("sim_cycles", core.cycle);
        });
        sim_span.arg("cycles", platform.core.cycle);
        sim_span.arg("cache", build.label());
        exit
    } else {
        platform.run(limit)
    };
    let cycles = platform.core.cycle;
    Ok(RunOutcome {
        platform,
        exit,
        cycles,
        build_us,
        build,
    })
}

/// Hit/miss/bypass counters of a [`SnapshotCache`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotCacheMetrics {
    /// Cases that forked an existing checkpoint (boot or setup-prefix).
    pub hits: u64,
    /// Cases that captured a new checkpoint (first case per
    /// configuration or sweep family).
    pub misses: u64,
    /// Cases that fell back to a fresh build (checkpointing inapplicable:
    /// an external interrupt scheduled inside the boot prefix, or a
    /// capture failure for the configuration).
    pub bypasses: u64,
    /// Total wall-clock µs spent capturing checkpoints (boot snapshots
    /// plus setup-prefix builds) — the one-time cost the hits amortize.
    pub capture_us: u64,
}

/// Retained setup-prefix checkpoints are bounded: each holds a
/// copy-on-write platform (shared pages plus the buffered prefix trace),
/// so the cache evicts the oldest sweep family beyond this many.
const PREFIX_CAP: usize = 64;

/// A keyed cache of copy-on-write platform checkpoints, shared across
/// engine workers (interior mutability; take a `&SnapshotCache` per
/// worker). Two tiers:
///
/// - **Boot snapshots**, keyed by everything the boot prefix depends on:
///   the design name plus the setup knobs lowered into the security
///   monitor image and host page tables — `(design, host_sv39,
///   mcounteren, sm_clear_hpcs, irq enabled)`. Everything else a case
///   varies (host/enclave programs, secret seeds, the interrupt cycle) is
///   applied *after* the fork by [`PlatformBuilder::build_from`].
/// - **Setup-prefix checkpoints** for interrupt-timing sweeps, keyed by
///   the design name plus the *entire case minus its interrupt cycle*
///   (name, access path and cycle budget are execution-irrelevant and
///   canonicalized out). The first case of a sweep family builds the full
///   platform, simulates the shared setup prefix up to one cycle before
///   its interrupt, and checkpoints there; every sibling whose interrupt
///   lands later forks the checkpoint and re-simulates only the tail.
#[derive(Debug, Default)]
pub struct SnapshotCache {
    boots: Mutex<HashMap<BootKey, Option<Arc<PlatformSnapshot>>>>,
    prefixes: Mutex<PrefixMap>,
    hits: AtomicU64,
    misses: AtomicU64,
    bypasses: AtomicU64,
    capture_us: AtomicU64,
}

type BootKey = (String, bool, u64, bool, bool);
type PrefixKey = (String, String);

/// Insertion-ordered map of setup-prefix checkpoints (`None` marks a
/// family whose capture failed, so siblings skip straight to tier two).
#[derive(Debug, Default)]
struct PrefixMap {
    entries: HashMap<PrefixKey, Option<Arc<PrefixSnapshot>>>,
    order: VecDeque<PrefixKey>,
}

/// A fully built platform checkpointed mid-run, after the setup-gadget
/// prefix shared by an interrupt-timing sweep family.
#[derive(Debug)]
struct PrefixSnapshot {
    platform: Platform,
    /// The cycle the checkpoint was taken at. Forking is sound only for
    /// interrupts scheduled strictly later: before this cycle the
    /// captured execution and a fresh run are indistinguishable.
    prefix_cycles: u64,
}

impl SnapshotCache {
    /// Creates an empty cache.
    pub fn new() -> SnapshotCache {
        SnapshotCache::default()
    }

    /// Current counter values.
    pub fn metrics(&self) -> SnapshotCacheMetrics {
        SnapshotCacheMetrics {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bypasses: self.bypasses.load(Ordering::Relaxed),
            capture_us: self.capture_us.load(Ordering::Relaxed),
        }
    }

    /// Produces a ready-to-run platform for `tc`, forking the deepest
    /// applicable checkpoint (setup-prefix, then boot) and falling back
    /// to a fresh build. Exactly one of hits/misses/bypasses is counted
    /// per call, so the three always sum to the number of cases run.
    fn platform_for(
        &self,
        tc: &TestCase,
        cfg: &CoreConfig,
        limit: u64,
    ) -> Result<(Platform, BuildKind), BuildError> {
        // Tier one: setup-prefix checkpoints for interrupt-timing sweeps.
        // Only sound when the interrupt lands strictly inside the cycle
        // budget — otherwise a fresh run would hit the limit first.
        if let Some(at) = tc.irq_at.filter(|&at| at > 0 && at - 1 < limit) {
            let key: PrefixKey = (cfg.name.clone(), prefix_fingerprint(tc));
            let cached = {
                let map = self.prefixes.lock().expect("prefix cache poisoned");
                map.entries.get(&key).cloned()
            };
            match cached {
                Some(Some(snap)) if at > snap.prefix_cycles => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    let mut platform = snap.platform.clone();
                    platform.core.schedule_external_interrupt(at);
                    return Ok((platform, BuildKind::PrefixForked));
                }
                // Captured but inapplicable (interrupt inside the captured
                // prefix, or the family's capture failed): tier two.
                Some(_) => {}
                None => return self.capture_prefix(tc, cfg, at, key),
            }
        }
        // Tier two: boot snapshots.
        let (snap, fresh_capture) = self.boot_snapshot_for(tc, cfg);
        match snap {
            Some(snap) if boot_fork_applies(tc, &snap) => {
                let (counter, kind) = if fresh_capture {
                    (&self.misses, BuildKind::BootCaptured)
                } else {
                    (&self.hits, BuildKind::BootForked)
                };
                counter.fetch_add(1, Ordering::Relaxed);
                Ok((case_builder(tc, cfg).build_from(&snap)?, kind))
            }
            _ => {
                self.bypasses.fetch_add(1, Ordering::Relaxed);
                Ok((case_builder(tc, cfg).build()?, BuildKind::Fresh))
            }
        }
    }

    /// First case of a sweep family: build the full platform (forking the
    /// boot snapshot when possible), simulate the shared setup prefix up
    /// to one cycle before this case's interrupt, checkpoint there, and
    /// hand this case a fork of the fresh checkpoint.
    fn capture_prefix(
        &self,
        tc: &TestCase,
        cfg: &CoreConfig,
        at: u64,
        key: PrefixKey,
    ) -> Result<(Platform, BuildKind), BuildError> {
        let (boot, _) = self.boot_snapshot_for(tc, cfg);
        // Boot-capture cost (when this call did one) is accounted by
        // `boot_snapshot_for`; time only the prefix build + run here.
        let t0 = std::time::Instant::now();
        let built = match boot {
            Some(snap) if boot_fork_applies(tc, &snap) => {
                case_builder_with(tc, cfg, false).build_from(&snap)
            }
            _ => case_builder_with(tc, cfg, false).build(),
        };
        let mut platform = match built {
            Ok(p) => p,
            Err(e) => {
                // Remember the failure so siblings skip the capture
                // attempt; the case itself surfaces the build error.
                let mut map = self.prefixes.lock().expect("prefix cache poisoned");
                map.insert_bounded(key, None);
                self.bypasses.fetch_add(1, Ordering::Relaxed);
                return Err(e);
            }
        };
        // The prefix run is interrupt-free by construction (the builder
        // above never schedules one), so it is bit-identical to a fresh
        // run's first `at - 1` cycles: the interrupt only asserts from
        // cycle `at` onward.
        platform.run(at - 1);
        if platform.core.fast_path() {
            // Freeze the setup prefix: sibling forks share it by
            // refcount instead of deep-copying the event buffer.
            platform.core.trace.freeze();
        }
        let snap = Arc::new(PrefixSnapshot {
            prefix_cycles: platform.core.cycle,
            platform,
        });
        self.capture_us.fetch_add(
            t0.elapsed().as_micros().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut forked = snap.platform.clone();
        forked.core.schedule_external_interrupt(at);
        let mut map = self.prefixes.lock().expect("prefix cache poisoned");
        map.insert_bounded(key, Some(snap));
        Ok((forked, BuildKind::PrefixCaptured))
    }

    /// The boot snapshot for `tc`'s configuration, capturing it on first
    /// use (uncounted: callers attribute the case to exactly one
    /// counter). The flag reports whether this call did the capture.
    fn boot_snapshot_for(
        &self,
        tc: &TestCase,
        cfg: &CoreConfig,
    ) -> (Option<Arc<PlatformSnapshot>>, bool) {
        let key: BootKey = (
            cfg.name.clone(),
            tc.host_sv39,
            tc.mcounteren,
            tc.sm_clear_hpcs,
            tc.irq_at.is_some(),
        );
        let mut fresh_capture = false;
        let entry = {
            let mut map = self.boots.lock().expect("snapshot cache poisoned");
            map.entry(key)
                .or_insert_with(|| {
                    fresh_capture = true;
                    PlatformSnapshot::capture(
                        cfg.clone(),
                        &sm_options_for(tc, cfg),
                        host_vm_for(tc),
                    )
                    .ok()
                    .map(Arc::new)
                })
                .clone()
        };
        if fresh_capture {
            if let Some(snap) = &entry {
                self.capture_us
                    .fetch_add(snap.capture_us(), Ordering::Relaxed);
            }
        }
        (entry, fresh_capture)
    }
}

impl PrefixMap {
    /// Inserts, evicting the oldest family beyond [`PREFIX_CAP`] so
    /// retained checkpoint memory stays bounded.
    fn insert_bounded(&mut self, key: PrefixKey, snap: Option<Arc<PrefixSnapshot>>) {
        if self.entries.insert(key.clone(), snap).is_none() {
            self.order.push_back(key);
            while self.order.len() > PREFIX_CAP {
                if let Some(old) = self.order.pop_front() {
                    self.entries.remove(&old);
                }
            }
        }
    }
}

/// Whether forking the boot snapshot reproduces a fresh run exactly: an
/// external interrupt scheduled at (or inside) the boot prefix could not
/// be taken at the same cycle a fresh run would.
fn boot_fork_applies(tc: &TestCase, snap: &PlatformSnapshot) -> bool {
    tc.irq_at.is_none_or(|at| at > snap.boot_cycles() + 1)
}

/// The sweep-family key: the case with every execution-irrelevant field
/// (name, access-path label, cycle budget) and the swept interrupt cycle
/// canonicalized out. Two cases with equal fingerprints build and run
/// bit-identically up to their first interrupt.
fn prefix_fingerprint(tc: &TestCase) -> String {
    let mut probe = tc.clone();
    probe.name = String::new();
    probe.path = crate::paths::AccessPath::LoadL1Hit;
    probe.max_cycles = 0;
    probe.irq_at = None;
    serde_json::to_string(&probe).expect("test cases serialize")
}

fn host_vm_for(tc: &TestCase) -> HostVm {
    if tc.host_sv39 {
        HostVm::Sv39
    } else {
        HostVm::Bare
    }
}

fn sm_options_for(tc: &TestCase, cfg: &CoreConfig) -> SmOptions {
    SmOptions {
        mcounteren: tc.mcounteren,
        clear_hpcs_on_switch: tc.sm_clear_hpcs,
        hpm_counters: cfg.hpm_counters,
        enable_external_irq: tc.irq_at.is_some(),
        ..SmOptions::default()
    }
}

/// Lowers `tc` onto a fresh platform without running it. Building is
/// deterministic: two calls with the same inputs produce identical memory
/// images and reset state — the property the differential oracle relies on
/// to seed its reference ISS with the core's exact initial memory.
///
/// # Errors
///
/// Propagates [`BuildError`] exactly as [`run_case`] does.
pub fn build_platform(tc: &TestCase, cfg: &CoreConfig) -> Result<Platform, BuildError> {
    case_builder(tc, cfg).build()
}

/// Lowers `tc` into a configured [`PlatformBuilder`], ready for either
/// [`PlatformBuilder::build`] or [`PlatformBuilder::build_from`].
fn case_builder(tc: &TestCase, cfg: &CoreConfig) -> PlatformBuilder<'static> {
    case_builder_with(tc, cfg, true)
}

/// [`case_builder`] with control over whether the case's external
/// interrupt is scheduled on the core. Prefix capture builds with it
/// unscheduled (the SM image still enables the interrupt path — that
/// depends only on `irq_at.is_some()`), then each fork schedules its own
/// sweep cycle.
fn case_builder_with(
    tc: &TestCase,
    cfg: &CoreConfig,
    schedule_irq: bool,
) -> PlatformBuilder<'static> {
    let mut builder = Platform::builder(cfg.clone())
        .host_vm(host_vm_for(tc))
        .sm_options(sm_options_for(tc, cfg));
    let host_steps = tc.host_steps.clone();
    builder = builder.host_code(move |a, _| {
        lower_steps(a, &host_steps, layout::HOST_BASE, "h");
    });
    for (i, steps) in tc.enclave_steps.iter().enumerate() {
        // An enclave needs a code image (at least the implicit stop
        // terminator) whenever the host actually enters it.
        let entered = tc.host_steps.iter().any(|s| {
            matches!(s, crate::testcase::Step::Sbi { call, enclave }
                if *enclave == i as u64
                    && matches!(call, teesec_tee::SbiCall::RunEnclave | teesec_tee::SbiCall::ResumeEnclave))
        });
        if steps.is_empty() && !entered {
            continue;
        }
        let steps = steps.clone();
        let base = layout::enclave_base(i);
        builder = builder.enclave_code(i, move |a, _| {
            lower_steps(a, &steps, base, &format!("e{i}"));
        });
    }
    for rec in tc.secrets.records() {
        builder = builder.seed_u64(rec.addr, rec.value);
    }
    if let Some(at) = tc.irq_at.filter(|_| schedule_irq) {
        builder = builder.external_interrupt_at(at);
    }
    builder
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble::{assemble_case, CaseParams};
    use crate::paths::AccessPath;

    #[test]
    fn default_case_runs_to_completion() {
        let cfg = CoreConfig::boom();
        let tc = assemble_case(AccessPath::LoadL1Hit, CaseParams::default(), &cfg).unwrap();
        let out = run_case(&tc, &cfg).expect("build");
        assert_eq!(out.exit, RunExit::Halted, "case must halt: {}", tc.name);
        assert!(out.cycles > 100);
        assert!(!out.platform.core.trace.is_empty());
    }

    /// An interrupt-timing sweep family must fork the setup-prefix
    /// checkpoint (one miss, then hits) and stay cycle- and
    /// counter-exact with fresh builds at every swept cycle.
    #[test]
    fn prefix_forked_irq_sweep_matches_fresh_builds() {
        let cfg = CoreConfig::boom();
        let cache = SnapshotCache::new();
        for k in 0..4u64 {
            let params = CaseParams {
                restricted_counters: true,
                irq_at: Some(2_000 + 37 * k),
                ..CaseParams::default()
            };
            let tc = assemble_case(AccessPath::HpcRead, params, &cfg).unwrap();
            let fresh = run_case(&tc, &cfg).expect("fresh build");
            let forked = run_case_opts(
                &tc,
                &cfg,
                RunOptions {
                    snapshot_cache: Some(&cache),
                    ..RunOptions::default()
                },
            )
            .expect("forked build");
            assert_eq!(forked.exit, fresh.exit, "sweep step {k}");
            assert_eq!(forked.cycles, fresh.cycles, "cycle-exact at step {k}");
            assert_eq!(
                forked.platform.core.counters(),
                fresh.platform.core.counters(),
                "microarch counter digests at step {k}"
            );
            assert_eq!(
                forked.platform.core.trace.len(),
                fresh.platform.core.trace.len(),
                "trace length at step {k}"
            );
        }
        let m = cache.metrics();
        assert_eq!(m.misses, 1, "one capture for the family: {m:?}");
        assert_eq!(m.hits, 3, "siblings fork the checkpoint: {m:?}");
        assert_eq!(m.bypasses, 0, "{m:?}");
    }

    #[test]
    fn all_default_cases_halt_on_both_designs() {
        for cfg in [CoreConfig::boom(), CoreConfig::xiangshan()] {
            for path in AccessPath::all() {
                let Ok(tc) = assemble_case(*path, CaseParams::default(), &cfg) else {
                    continue;
                };
                let out = run_case(&tc, &cfg).expect("build");
                assert_eq!(
                    out.exit,
                    RunExit::Halted,
                    "case {} must halt on {} (ran {} cycles)",
                    tc.name,
                    cfg.name,
                    out.cycles
                );
            }
        }
    }
}
