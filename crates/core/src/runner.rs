//! Lowers test cases onto the Keystone platform and executes them on the
//! cycle-driven core — the "RTL simulation" phase of the framework.

use teesec_tee::layout;
use teesec_tee::platform::{BuildError, HostVm, Platform};
use teesec_tee::sm::SmOptions;
use teesec_uarch::config::CoreConfig;
use teesec_uarch::core::RunExit;

use crate::testcase::{lower_steps, TestCase};

/// The product of running one test case.
#[derive(Debug)]
pub struct RunOutcome {
    /// The platform after the run (trace, caches, CSRs all inspectable).
    pub platform: Platform,
    /// How the run ended.
    pub exit: RunExit,
    /// Cycles consumed.
    pub cycles: u64,
    /// Wall-clock cost of assembling and building the platform, separated
    /// from simulation proper for the engine's per-phase histograms.
    pub build_us: u128,
}

/// Builds and runs `tc` on a core configured by `cfg`.
///
/// # Errors
///
/// Propagates [`BuildError`] when the lowered program does not assemble or
/// overflows a region.
pub fn run_case(tc: &TestCase, cfg: &CoreConfig) -> Result<RunOutcome, BuildError> {
    run_case_budgeted(tc, cfg, None)
}

/// [`run_case`] under a simulated-cycle watchdog: the effective cycle limit
/// is `min(tc.max_cycles, budget)`, so a budget-blown case exits with
/// [`RunExit::CycleLimit`] instead of running out its full `max_cycles`.
///
/// # Errors
///
/// Propagates [`BuildError`] exactly as [`run_case`] does.
pub fn run_case_budgeted(
    tc: &TestCase,
    cfg: &CoreConfig,
    budget: Option<u64>,
) -> Result<RunOutcome, BuildError> {
    let build_start = std::time::Instant::now();
    let mut platform = build_platform(tc, cfg)?;
    let build_us = build_start.elapsed().as_micros();
    let limit = budget.map_or(tc.max_cycles, |b| b.min(tc.max_cycles));
    let exit = platform.run(limit);
    let cycles = platform.core.cycle;
    Ok(RunOutcome {
        platform,
        exit,
        cycles,
        build_us,
    })
}

/// Lowers `tc` onto a fresh platform without running it. Building is
/// deterministic: two calls with the same inputs produce identical memory
/// images and reset state — the property the differential oracle relies on
/// to seed its reference ISS with the core's exact initial memory.
///
/// # Errors
///
/// Propagates [`BuildError`] exactly as [`run_case`] does.
pub fn build_platform(tc: &TestCase, cfg: &CoreConfig) -> Result<Platform, BuildError> {
    let mut builder = Platform::builder(cfg.clone())
        .host_vm(if tc.host_sv39 {
            HostVm::Sv39
        } else {
            HostVm::Bare
        })
        .sm_options(SmOptions {
            mcounteren: tc.mcounteren,
            clear_hpcs_on_switch: tc.sm_clear_hpcs,
            hpm_counters: cfg.hpm_counters,
            enable_external_irq: tc.irq_at.is_some(),
            ..SmOptions::default()
        });
    let host_steps = tc.host_steps.clone();
    builder = builder.host_code(move |a, _| {
        lower_steps(a, &host_steps, layout::HOST_BASE, "h");
    });
    for (i, steps) in tc.enclave_steps.iter().enumerate() {
        // An enclave needs a code image (at least the implicit stop
        // terminator) whenever the host actually enters it.
        let entered = tc.host_steps.iter().any(|s| {
            matches!(s, crate::testcase::Step::Sbi { call, enclave }
                if *enclave == i as u64
                    && matches!(call, teesec_tee::SbiCall::RunEnclave | teesec_tee::SbiCall::ResumeEnclave))
        });
        if steps.is_empty() && !entered {
            continue;
        }
        let steps = steps.clone();
        let base = layout::enclave_base(i);
        builder = builder.enclave_code(i, move |a, _| {
            lower_steps(a, &steps, base, &format!("e{i}"));
        });
    }
    for rec in tc.secrets.records() {
        builder = builder.seed_u64(rec.addr, rec.value);
    }
    if let Some(at) = tc.irq_at {
        builder = builder.external_interrupt_at(at);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble::{assemble_case, CaseParams};
    use crate::paths::AccessPath;

    #[test]
    fn default_case_runs_to_completion() {
        let cfg = CoreConfig::boom();
        let tc = assemble_case(AccessPath::LoadL1Hit, CaseParams::default(), &cfg).unwrap();
        let out = run_case(&tc, &cfg).expect("build");
        assert_eq!(out.exit, RunExit::Halted, "case must halt: {}", tc.name);
        assert!(out.cycles > 100);
        assert!(!out.platform.core.trace.is_empty());
    }

    #[test]
    fn all_default_cases_halt_on_both_designs() {
        for cfg in [CoreConfig::boom(), CoreConfig::xiangshan()] {
            for path in AccessPath::all() {
                let Ok(tc) = assemble_case(*path, CaseParams::default(), &cfg) else {
                    continue;
                };
                let out = run_case(&tc, &cfg).expect("build");
                assert_eq!(
                    out.exit,
                    RunExit::Halted,
                    "case {} must halt on {} (ran {} cycles)",
                    tc.name,
                    cfg.name,
                    out.cycles
                );
            }
        }
    }
}
