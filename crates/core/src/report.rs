//! Leakage findings and reports — the CheckerLog of the paper's artifact.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use teesec_uarch::trace::{Domain, Structure};

use crate::paths::AccessPath;
use crate::secret::SecretRecord;

/// The ten distinct leakage classes of the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LeakClass {
    /// Enclave data via L1D prefetcher abuse (LFB).
    D1,
    /// Enclave/SM data through page-table walks (LFB).
    D2,
    /// LFB residual data after enclave destroy.
    D3,
    /// Enclave data/code to host user/supervisor (register file).
    D4,
    /// Keystone SM data/code to host user/supervisor (register file).
    D5,
    /// Enclave data/code to another enclave (register file).
    D6,
    /// Host user/supervisor data/code to an enclave (register file).
    D7,
    /// Enclave data/code through the store buffer.
    D8,
    /// Enclave control-flow / data access patterns via performance counters.
    M1,
    /// Enclave control-flow via branch-prediction-unit conflicts.
    M2,
}

impl LeakClass {
    /// All classes in Table 3 order.
    pub fn all() -> &'static [LeakClass] {
        &[
            LeakClass::D1,
            LeakClass::D2,
            LeakClass::D3,
            LeakClass::D4,
            LeakClass::D5,
            LeakClass::D6,
            LeakClass::D7,
            LeakClass::D8,
            LeakClass::M1,
            LeakClass::M2,
        ]
    }

    /// The paper's one-line description.
    pub fn description(self) -> &'static str {
        match self {
            LeakClass::D1 => "Leaking enclave data via L1D prefetcher abuse",
            LeakClass::D2 => "Leaking enclave/SM data through page table walks",
            LeakClass::D3 => "Leaking LFB residual data after enclave destroy",
            LeakClass::D4 => "Leaking enclave data/code to host user/supervisor",
            LeakClass::D5 => "Leaking Keystone SM data/code to host user/supervisor",
            LeakClass::D6 => "Leaking enclave data/code to another enclave",
            LeakClass::D7 => "Leaking host user/supervisor data/code to enclave",
            LeakClass::D8 => "Leaking enclave data/code through store buffer",
            LeakClass::M1 => {
                "Revealing enclave control-flow/data access patterns via performance counters"
            }
            LeakClass::M2 => {
                "Revealing enclave control-flow via conflicts on branch prediction units"
            }
        }
    }

    /// The microarchitectural source column of Table 3.
    pub fn source(self) -> &'static str {
        match self {
            LeakClass::D1 | LeakClass::D2 | LeakClass::D3 => "LFB",
            LeakClass::D4 | LeakClass::D5 | LeakClass::D6 | LeakClass::D7 => "RF",
            LeakClass::D8 => "RF",
            LeakClass::M1 => "HPC",
            LeakClass::M2 => "BPU",
        }
    }

    /// `true` for the metadata classes (P2 violations).
    pub fn is_metadata(self) -> bool {
        matches!(self, LeakClass::M1 | LeakClass::M2)
    }
}

impl fmt::Display for LeakClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Which security principle a finding violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Principle {
    /// P1: no enclave data fetched into / remaining in microarchitectural
    /// state outside enclave mode.
    P1,
    /// P2: enclave-influenced state must not affect non-enclave execution.
    P2,
}

/// One checker finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    /// The Table 3 class, when the finding maps onto one.
    pub class: Option<LeakClass>,
    /// The violated principle.
    pub principle: Principle,
    /// Where the residue/leak was observed.
    pub structure: Structure,
    /// Simulation cycle of the observation (0 = end-of-run snapshot).
    pub cycle: u64,
    /// PC of the associated instruction, when attributable.
    pub pc: Option<u64>,
    /// The identified secret, for data leaks.
    pub secret: Option<SecretRecord>,
    /// The domain that observed / could observe the residue.
    pub observer: Domain,
    /// Human-readable context.
    pub detail: String,
}

impl Finding {
    /// Renders this finding in the format of the artifact's CheckerLog.txt.
    pub fn render_checker_log(&self) -> String {
        let mut s = String::new();
        s.push_str(match self.principle {
            Principle::P1 => "Enclave secret leakage detected!\n",
            Principle::P2 => "Enclave metadata leakage detected!\n",
        });
        if let Some(rec) = self.secret {
            s.push_str(&format!("Secret value: {:#x}\n", rec.value));
            s.push_str(&format!("Seeded at address: {:#x}\n", rec.addr));
        }
        s.push_str(&format!(
            "Microarchitecture structure: {}\n",
            self.structure.display_name()
        ));
        s.push_str(&format!("Sim Cycle No.: {}\n", self.cycle));
        if let Some(pc) = self.pc {
            s.push_str(&format!("PC of Last Committed Inst.: {pc:#x}\n"));
        }
        if let Some(c) = self.class {
            s.push_str(&format!("Leakage case: {c} ({})\n", c.description()));
        }
        s.push_str(&format!("Detail: {}\n", self.detail));
        s
    }
}

/// The checker's verdict for one test case.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckReport {
    /// Test case name.
    pub case: String,
    /// The access path the case exercised.
    pub path: AccessPath,
    /// The design under test.
    pub design: String,
    /// All findings, in trace order.
    pub findings: Vec<Finding>,
    /// Reconstructed causal chains, keyed by
    /// [`finding_index`](crate::provenance::ProvenanceChain::finding_index).
    /// May be shorter than `findings` when a mechanism is untraceable.
    pub provenance: Vec<crate::provenance::ProvenanceChain>,
}

impl CheckReport {
    /// The provenance chain explaining `findings[index]`, if one was
    /// reconstructed.
    pub fn chain_for(&self, index: usize) -> Option<&crate::provenance::ProvenanceChain> {
        self.provenance.iter().find(|c| c.finding_index == index)
    }

    /// The distinct Table 3 classes among the findings.
    pub fn classes(&self) -> BTreeSet<LeakClass> {
        self.findings.iter().filter_map(|f| f.class).collect()
    }

    /// `true` when no violation of either principle was found.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Counts findings per principle: `(p1, p2)`.
    pub fn principle_counts(&self) -> (usize, usize) {
        let p1 = self
            .findings
            .iter()
            .filter(|f| f.principle == Principle::P1)
            .count();
        (p1, self.findings.len() - p1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_distinct_classes() {
        assert_eq!(LeakClass::all().len(), 10);
        let meta = LeakClass::all().iter().filter(|c| c.is_metadata()).count();
        assert_eq!(meta, 2);
    }

    #[test]
    fn sources_match_table3() {
        assert_eq!(LeakClass::D1.source(), "LFB");
        assert_eq!(LeakClass::D4.source(), "RF");
        assert_eq!(LeakClass::M1.source(), "HPC");
        assert_eq!(LeakClass::M2.source(), "BPU");
    }

    #[test]
    fn checker_log_format() {
        let f = Finding {
            class: Some(LeakClass::D4),
            principle: Principle::P1,
            structure: Structure::RegFile,
            cycle: 234785,
            pc: Some(0x80004808),
            secret: Some(SecretRecord {
                addr: 0x8040_2000,
                value: 0xdeadbeef,
                owner: Domain::Enclave(0),
            }),
            observer: Domain::Untrusted,
            detail: "transient writeback of faulting load".into(),
        };
        let log = f.render_checker_log();
        assert!(log.contains("Enclave secret leakage detected!"));
        assert!(log.contains("Secret value: 0xdeadbeef"));
        assert!(log.contains("Register-file"));
        assert!(log.contains("234785"));
        assert!(log.contains("0x80004808"));
    }

    #[test]
    fn report_aggregation() {
        let f = |class| Finding {
            class,
            principle: Principle::P1,
            structure: Structure::Lfb,
            cycle: 1,
            pc: None,
            secret: None,
            observer: Domain::Untrusted,
            detail: String::new(),
        };
        let r = CheckReport {
            case: "t".into(),
            path: AccessPath::LoadL1Hit,
            design: "boom".into(),
            findings: vec![f(Some(LeakClass::D1)), f(Some(LeakClass::D1)), f(None)],
            provenance: Vec::new(),
        };
        assert_eq!(r.classes().len(), 1);
        assert!(!r.clean());
        assert_eq!(r.principle_counts(), (3, 0));
    }
}
