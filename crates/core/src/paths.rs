//! The memory-access-path enumeration of the verification plan
//! (paper §4.1.1).
//!
//! Thirteen data paths (one per way data can move between memory and the
//! core, explicit and implicit) and two metadata paths. Each access gadget
//! in the constructor exercises exactly one of these.

use serde::{Deserialize, Serialize};

use teesec_uarch::config::{CoreConfig, PrefetcherKind, PtwRequestPath};

/// Whether a path is initiated by an instruction or by hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Initiation {
    /// Initiated directly by a load/store/fetch instruction.
    Explicit,
    /// Initiated by hardware on the program's behalf (prefetch, page walk,
    /// scrub) — the paths §4.1.2 notes often skip permission checks.
    Implicit,
}

/// What the path can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PayloadKind {
    /// Enclave/SM/host data or code bytes (P1).
    Data,
    /// Execution metadata: counters, branch history (P2).
    Metadata,
}

/// The complete access-path enumeration for the modeled cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AccessPath {
    /// Explicit load hitting in the L1D.
    LoadL1Hit,
    /// Explicit load missing L1D, hitting L2 (LFB refill).
    LoadL2Hit,
    /// Explicit load missing both levels (memory + L2 + LFB refill).
    LoadMemMiss,
    /// Explicit load serviced by the committed-store buffer.
    LoadSbForward,
    /// Explicit misaligned load (support/fault behaviour differs).
    LoadMisaligned,
    /// Explicit store hitting in the L1D.
    StoreL1Hit,
    /// Explicit store missing the L1D (write-allocate refill via LFB).
    StoreMiss,
    /// Page-table walk resolved from the PTW cache.
    PtwCached,
    /// Page-table walk fetching PTEs from the memory hierarchy.
    PtwMemory,
    /// Page-table walk with an attacker-poisoned root pointer (SATP aimed
    /// at protected memory — the D2 scenario).
    PtwPoisonedRoot,
    /// Hardware next-line prefetch triggered by a demand miss (D1).
    PrefetchNextLine,
    /// Instruction fetch (I-side translation + PMP).
    InstFetch,
    /// The security monitor's destroy-time scrub stores (write-allocate
    /// refills of old enclave lines — D3).
    SmScrub,
    /// Reads of hardware performance counters (M1).
    HpcRead,
    /// Branch-target-buffer lookups with partial tags (M2).
    BtbLookup,
}

impl AccessPath {
    /// All paths in plan order: thirteen data paths then two metadata paths.
    pub fn all() -> &'static [AccessPath] {
        &[
            AccessPath::LoadL1Hit,
            AccessPath::LoadL2Hit,
            AccessPath::LoadMemMiss,
            AccessPath::LoadSbForward,
            AccessPath::LoadMisaligned,
            AccessPath::StoreL1Hit,
            AccessPath::StoreMiss,
            AccessPath::PtwCached,
            AccessPath::PtwMemory,
            AccessPath::PtwPoisonedRoot,
            AccessPath::PrefetchNextLine,
            AccessPath::InstFetch,
            AccessPath::SmScrub,
            AccessPath::HpcRead,
            AccessPath::BtbLookup,
        ]
    }

    /// Explicit or implicit initiation.
    pub fn initiation(self) -> Initiation {
        match self {
            AccessPath::LoadL1Hit
            | AccessPath::LoadL2Hit
            | AccessPath::LoadMemMiss
            | AccessPath::LoadSbForward
            | AccessPath::LoadMisaligned
            | AccessPath::StoreL1Hit
            | AccessPath::StoreMiss
            | AccessPath::InstFetch
            | AccessPath::HpcRead
            | AccessPath::BtbLookup => Initiation::Explicit,
            AccessPath::PtwCached
            | AccessPath::PtwMemory
            | AccessPath::PtwPoisonedRoot
            | AccessPath::PrefetchNextLine
            | AccessPath::SmScrub => Initiation::Implicit,
        }
    }

    /// Data or metadata payload.
    pub fn payload(self) -> PayloadKind {
        match self {
            AccessPath::HpcRead | AccessPath::BtbLookup => PayloadKind::Metadata,
            _ => PayloadKind::Data,
        }
    }

    /// Whether this path undergoes a PMP permission check on the given
    /// design, and when (the §4.1.2 permission-policy profile).
    pub fn permission_policy(self, cfg: &CoreConfig) -> PermissionPolicy {
        use teesec_uarch::config::PmpCheckTiming;
        match self {
            AccessPath::PrefetchNextLine => {
                if cfg.prefetcher_pmp_check {
                    PermissionPolicy::CheckedBefore
                } else {
                    PermissionPolicy::Unchecked
                }
            }
            AccessPath::PtwCached | AccessPath::PtwMemory | AccessPath::PtwPoisonedRoot => {
                if cfg.effective_ptw_precheck() {
                    PermissionPolicy::CheckedBefore
                } else {
                    PermissionPolicy::Unchecked
                }
            }
            AccessPath::SmScrub => PermissionPolicy::MachineMode,
            AccessPath::HpcRead | AccessPath::BtbLookup => PermissionPolicy::Unchecked,
            AccessPath::InstFetch => PermissionPolicy::CheckedBefore,
            _ => match cfg.effective_pmp_check() {
                PmpCheckTiming::ParallelWithAccess => PermissionPolicy::CheckedLazy,
                PmpCheckTiming::BeforeAccess => PermissionPolicy::CheckedBefore,
            },
        }
    }

    /// `true` when the path exists on the given design at all (e.g. no
    /// prefetch path without a prefetcher).
    pub fn exists_on(self, cfg: &CoreConfig) -> bool {
        match self {
            AccessPath::PrefetchNextLine => cfg.l1d_prefetcher != PrefetcherKind::None,
            AccessPath::LoadSbForward => cfg.store_buffer_entries > 0,
            AccessPath::PtwPoisonedRoot => {
                // The scenario exists everywhere; on a pre-checking design
                // the request is suppressed — which is what the test proves.
                let _ = matches!(cfg.ptw_request_path, PtwRequestPath::ViaL1d);
                true
            }
            _ => true,
        }
    }

    /// Short stable identifier used in reports and test-case names.
    pub fn id(self) -> &'static str {
        match self {
            AccessPath::LoadL1Hit => "exp_load_l1_hit",
            AccessPath::LoadL2Hit => "exp_load_l2_hit",
            AccessPath::LoadMemMiss => "exp_load_mem_miss",
            AccessPath::LoadSbForward => "exp_load_sb_fwd",
            AccessPath::LoadMisaligned => "exp_load_misaligned",
            AccessPath::StoreL1Hit => "exp_store_l1_hit",
            AccessPath::StoreMiss => "exp_store_miss",
            AccessPath::PtwCached => "imp_ptw_cached",
            AccessPath::PtwMemory => "imp_ptw_memory",
            AccessPath::PtwPoisonedRoot => "imp_ptw_poisoned_root",
            AccessPath::PrefetchNextLine => "imp_prefetch_next_line",
            AccessPath::InstFetch => "exp_inst_fetch",
            AccessPath::SmScrub => "imp_sm_scrub",
            AccessPath::HpcRead => "meta_hpc_read",
            AccessPath::BtbLookup => "meta_btb_lookup",
        }
    }
}

/// When (if ever) a permission check covers an access path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PermissionPolicy {
    /// Checked before the access can have any side effect.
    CheckedBefore,
    /// Checked in parallel / lazily — side effects precede the fault.
    CheckedLazy,
    /// Never permission-checked.
    Unchecked,
    /// Performed by M-mode firmware (PMP does not constrain it).
    MachineMode,
}

#[cfg(test)]
mod tests {
    use super::*;
    use teesec_uarch::CoreConfig;

    #[test]
    fn thirteen_data_two_metadata() {
        let data = AccessPath::all()
            .iter()
            .filter(|p| p.payload() == PayloadKind::Data)
            .count();
        let meta = AccessPath::all()
            .iter()
            .filter(|p| p.payload() == PayloadKind::Metadata)
            .count();
        assert_eq!(data, 13, "paper: 13 data access gadgets");
        assert_eq!(meta, 2, "paper: 2 metadata access gadgets");
    }

    #[test]
    fn ids_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for p in AccessPath::all() {
            assert!(seen.insert(p.id()), "duplicate id {}", p.id());
        }
    }

    #[test]
    fn implicit_paths_match_paper() {
        assert_eq!(
            AccessPath::PrefetchNextLine.initiation(),
            Initiation::Implicit
        );
        assert_eq!(
            AccessPath::PtwPoisonedRoot.initiation(),
            Initiation::Implicit
        );
        assert_eq!(AccessPath::SmScrub.initiation(), Initiation::Implicit);
        assert_eq!(AccessPath::LoadL1Hit.initiation(), Initiation::Explicit);
    }

    #[test]
    fn prefetch_path_exists_only_with_prefetcher() {
        assert!(AccessPath::PrefetchNextLine.exists_on(&CoreConfig::boom()));
        assert!(!AccessPath::PrefetchNextLine.exists_on(&CoreConfig::xiangshan()));
        assert!(!AccessPath::LoadSbForward.exists_on(&CoreConfig::boom()));
        assert!(AccessPath::LoadSbForward.exists_on(&CoreConfig::xiangshan()));
    }

    #[test]
    fn permission_policies_differ_across_designs() {
        let boom = CoreConfig::boom();
        let xs = CoreConfig::xiangshan();
        // The prefetcher path is unchecked (the D1 root cause).
        assert_eq!(
            AccessPath::PrefetchNextLine.permission_policy(&boom),
            PermissionPolicy::Unchecked
        );
        // BOOM's PTW is unchecked; XiangShan pre-checks (why D2 fails there).
        assert_eq!(
            AccessPath::PtwPoisonedRoot.permission_policy(&boom),
            PermissionPolicy::Unchecked
        );
        assert_eq!(
            AccessPath::PtwPoisonedRoot.permission_policy(&xs),
            PermissionPolicy::CheckedBefore
        );
        // Demand loads are lazily checked on both (the D4-D8 root cause).
        assert_eq!(
            AccessPath::LoadL1Hit.permission_policy(&boom),
            PermissionPolicy::CheckedLazy
        );
        assert_eq!(
            AccessPath::LoadL1Hit.permission_policy(&xs),
            PermissionPolicy::CheckedLazy
        );
        // The serializing mitigation changes the profile.
        let mut hardened = CoreConfig::boom();
        hardened.mitigations.serialize_pmp_check = true;
        assert_eq!(
            AccessPath::LoadL1Hit.permission_policy(&hardened),
            PermissionPolicy::CheckedBefore
        );
    }
}
