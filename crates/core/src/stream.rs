//! Online (streaming) checking: consume [`TraceEvent`]s as the core emits
//! them instead of scanning a fully buffered trace after the run.
//!
//! Two layers live here:
//!
//! - [`ScanState`]: the per-event finding state machine. It is the *single*
//!   implementation of the checker's trace scan — the batch
//!   [`check_case`](crate::checker::check_case) drives it over the buffered
//!   trace, and the streaming checker drives it from a trace sink — so
//!   batch and streaming findings are identical by construction.
//! - [`StreamingChecker`]: a [`TraceSink`] wrapping `ScanState` plus an
//!   online provenance index, producing a complete [`CheckReport`] (equal,
//!   field for field, to the batch pipeline's) from bounded memory: the
//!   trace itself is never buffered.
//!
//! The memory bound relies on one trace invariant: event cycles are
//! nondecreasing (events are recorded as the simulation advances). That
//! makes every "first event before the observation" query answerable with
//! O(1) state per (secret, structure) pair, because a first-in-order event
//! is also minimal-in-cycle.

use std::collections::{BTreeSet, HashMap, HashSet};

use teesec_uarch::config::CoreConfig;
use teesec_uarch::trace::{Domain, FillPurpose, Structure, TraceEvent, TraceEventKind, TraceSink};

use crate::checker::{authorized, classify_rf, finding_key, scan_snapshot};
use crate::coverage::{CaseCoverage, CellKey, CoverageTracker};
use crate::provenance::{event_verb, ProvenanceChain, ProvenanceHop};
use crate::report::{CheckReport, Finding, LeakClass, Principle};
use crate::runner::RunOutcome;
use crate::secret::SecretCatalog;
use crate::testcase::TestCase;

const NS: usize = 14; // Structure::all().len()

/// One scanned finding slot. Register-file leaks from an enclave to the
/// untrusted host cannot be classified online (D4 vs D8 depends on whether
/// the store buffer *ever* forwards the value, including later in the run),
/// so those stay pending until [`ScanState::into_findings`].
struct Slot {
    finding: Finding,
    /// `Some(secret value)` while the D4/D8 classification is pending.
    pending_rf_value: Option<u64>,
    /// Coverage cell captured at push time, so the late-resolved class
    /// lands in the window the finding was actually observed in.
    pending_cell: Option<CellKey>,
}

/// The checker's per-event trace-scan state machine (shared by the batch
/// and streaming pipelines).
pub(crate) struct ScanState {
    mcounteren: u64,
    secrets: SecretCatalog,
    tainted: Vec<bool>,
    /// Values returned by privileged counter reads that should have been
    /// rejected (Figure 6). The batch predicate also compares cycles, but
    /// with nondecreasing cycles every previously recorded read satisfies
    /// it, so value membership is sufficient.
    transient_read_values: HashSet<u64>,
    /// Secret values the store buffer forwarded to a load (D8 evidence).
    sb_forwarded_secrets: HashSet<u64>,
    /// Secret addresses with a pending enclave→host register-file finding.
    pending_rf_addrs: HashSet<u64>,
    dedup: BTreeSet<String>,
    slots: Vec<Slot>,
    events_seen: u64,
    /// Plan-coverage recorder; `None` unless coverage recording was
    /// requested (the default keeps the hot path untouched).
    coverage: Option<CoverageTracker>,
}

impl ScanState {
    pub(crate) fn new(mcounteren: u64, hpm_counters: usize, secrets: SecretCatalog) -> ScanState {
        ScanState {
            mcounteren,
            secrets,
            tainted: vec![false; hpm_counters],
            transient_read_values: HashSet::new(),
            sb_forwarded_secrets: HashSet::new(),
            pending_rf_addrs: HashSet::new(),
            dedup: BTreeSet::new(),
            slots: Vec::new(),
            events_seen: 0,
            coverage: None,
        }
    }

    /// Turns on plan-coverage recording for this scan.
    pub(crate) fn enable_coverage(&mut self) {
        self.coverage = Some(CoverageTracker::new());
    }

    fn push(&mut self, f: Finding) {
        if self.dedup.insert(finding_key(&f)) {
            if let Some(cov) = self.coverage.as_mut() {
                cov.record_detection(&f);
            }
            self.slots.push(Slot {
                finding: f,
                pending_rf_value: None,
                pending_cell: None,
            });
        }
    }

    /// Number of findings (resolved or pending) so far.
    pub(crate) fn finding_count(&self) -> usize {
        self.slots.len()
    }

    pub(crate) fn finding(&self, i: usize) -> &Finding {
        &self.slots[i].finding
    }

    /// Feeds one trace event through the scan.
    pub(crate) fn on_event(&mut self, e: &TraceEvent) {
        self.events_seen += 1;
        // Coverage first: a domain switch must advance the transition
        // window before any finding this event pushes is attributed.
        if let Some(cov) = self.coverage.as_mut() {
            cov.on_event(e);
        }
        match (&e.structure, &e.kind) {
            // ---- P1: verbatim secrets in the register file -----------------
            (Structure::RegFile, TraceEventKind::Write { value, .. }) => {
                if let Some(rec) = self.secrets.identify(*value) {
                    if !authorized(rec.owner, e.domain) {
                        let detail = format!(
                            "secret written back to the register file in {:?} domain (owner {:?})",
                            e.domain, rec.owner
                        );
                        let finding = Finding {
                            class: None, // resolved below / at finalize
                            principle: Principle::P1,
                            structure: Structure::RegFile,
                            cycle: e.cycle,
                            pc: e.pc,
                            secret: Some(rec),
                            observer: e.domain,
                            detail,
                        };
                        if matches!(
                            (rec.owner, e.domain),
                            (Domain::Enclave(_), Domain::Untrusted)
                        ) {
                            // D4 vs D8 needs whole-run store-buffer
                            // knowledge: park the first occurrence per
                            // secret (later ones deduplicate to the same
                            // key whichever way it resolves).
                            if self.pending_rf_addrs.insert(rec.addr) {
                                let pending_cell = self.coverage.as_mut().map(|cov| {
                                    cov.record_detection(&finding);
                                    cov.cell(finding.structure, finding.observer)
                                });
                                self.slots.push(Slot {
                                    finding,
                                    pending_rf_value: Some(*value),
                                    pending_cell,
                                });
                            }
                        } else {
                            let class = classify_rf(rec.owner, e.domain, false);
                            self.push(Finding { class, ..finding });
                        }
                    }
                }
            }
            // ---- P1: secrets arriving in fill buffers / caches -------------
            (
                s @ (Structure::Lfb | Structure::L1d | Structure::L2),
                TraceEventKind::Fill {
                    addr,
                    data,
                    purpose,
                },
            ) => {
                for (off, rec) in self.secrets.scan_bytes(data) {
                    if authorized(rec.owner, e.domain) {
                        continue;
                    }
                    // In-trace fills classify D1/D2 (the data should never
                    // have been fetched). StoreRefill classifies as D3 only
                    // when it *persists* into the snapshot — the transient
                    // arrival during the scrub itself is not the violation.
                    let class = if *s == Structure::Lfb {
                        match purpose {
                            FillPurpose::Prefetch => Some(LeakClass::D1),
                            FillPurpose::PageWalk => Some(LeakClass::D2),
                            _ => None,
                        }
                    } else {
                        None
                    };
                    self.push(Finding {
                        class,
                        principle: Principle::P1,
                        structure: *s,
                        cycle: e.cycle,
                        pc: e.pc,
                        secret: Some(rec),
                        observer: e.domain,
                        detail: format!(
                            "{:?}-initiated fill of line {:#x} carried the secret at byte offset {off} while executing in {:?} domain",
                            purpose, addr, e.domain
                        ),
                    });
                }
            }
            // ---- P2: performance counters ---------------------------------
            (Structure::Hpc, TraceEventKind::CounterBump { event }) => {
                let i = event.counter_index();
                if i < self.tainted.len() && e.domain.is_trusted() {
                    self.tainted[i] = true;
                }
            }
            (Structure::Hpc, TraceEventKind::Flush) => {
                self.tainted.iter_mut().for_each(|t| *t = false);
            }
            (Structure::Hpc, TraceEventKind::Write { index, value, .. }) if *value == 0 => {
                if let Some(t) = self.tainted.get_mut(*index as usize) {
                    *t = false;
                }
            }
            (Structure::Hpc, TraceEventKind::Read { index, value }) => {
                let i = *index as usize;
                if e.domain == Domain::Untrusted
                    && i < self.tainted.len()
                    && self.tainted[i]
                    && *value > 0
                {
                    self.push(Finding {
                        class: Some(LeakClass::M1),
                        principle: Principle::P2,
                        structure: Structure::Hpc,
                        cycle: e.cycle,
                        pc: e.pc,
                        secret: None,
                        observer: e.domain,
                        detail: format!(
                            "hpmcounter{} read {} events accumulated during trusted execution; counters are not reset at enclave boundaries",
                            i + 3,
                            value
                        ),
                    });
                }
                // Privileged-counter transient read (the mcounteren=0
                // configuration of Figure 6): the read should have been
                // rejected, yet a value reached the register file.
                if self.mcounteren == 0
                    && e.priv_level != teesec_isa::priv_level::PrivLevel::Machine
                    && *value > 0
                {
                    self.transient_read_values.insert(*value);
                }
            }
            // ---- P2 (Figure 6 tail): counter value spilled via the store
            // buffer by an interrupt context save ---------------------------
            (Structure::StoreBuffer, TraceEventKind::Write { value, .. }) => {
                if self.transient_read_values.contains(value) {
                    self.push(Finding {
                        class: Some(LeakClass::M1),
                        principle: Principle::P2,
                        structure: Structure::StoreBuffer,
                        cycle: e.cycle,
                        pc: e.pc,
                        secret: None,
                        observer: Domain::Untrusted,
                        detail: format!(
                            "transiently-read privileged counter value {value:#x} entered the store buffer through an interrupt context save and is exposed to store-buffer forwarding"
                        ),
                    });
                }
                // Also: verbatim secrets entering the store buffer outside
                // their owner's domain (enclave stores drain under host
                // execution are authorized — owner wrote them).
                if let Some(rec) = self.secrets.identify(*value) {
                    if !authorized(rec.owner, e.domain) {
                        self.push(Finding {
                            class: None,
                            principle: Principle::P1,
                            structure: Structure::StoreBuffer,
                            cycle: e.cycle,
                            pc: e.pc,
                            secret: Some(rec),
                            observer: e.domain,
                            detail: "secret value written into the store buffer outside its owner's domain"
                                .into(),
                        });
                    }
                }
            }
            (Structure::StoreBuffer, TraceEventKind::Read { value, .. })
                if self.secrets.identify(*value).is_some() =>
            {
                self.sb_forwarded_secrets.insert(*value);
            }
            _ => {}
        }
    }

    /// Resolves pending register-file classifications and returns the
    /// findings plus the dedup key set (carried into the snapshot scan so
    /// trace-time findings suppress equivalent residue findings, exactly
    /// as the single-pass batch scan does).
    pub(crate) fn into_findings(self) -> (Vec<Finding>, BTreeSet<String>, Option<CoverageTracker>) {
        let mut dedup = self.dedup;
        let mut coverage = self.coverage;
        let sb_forwarded_secrets = self.sb_forwarded_secrets;
        let findings = self
            .slots
            .into_iter()
            .map(|slot| {
                let mut f = slot.finding;
                if let Some(v) = slot.pending_rf_value {
                    let class = if sb_forwarded_secrets.contains(&v) {
                        LeakClass::D8
                    } else {
                        LeakClass::D4
                    };
                    f.class = Some(class);
                    // The final key cannot collide: D4/D8 register-file
                    // keys are produced by this arm alone.
                    dedup.insert(finding_key(&f));
                    if let (Some(cov), Some(cell)) = (coverage.as_mut(), slot.pending_cell) {
                        cov.resolve_class(cell, class);
                    }
                }
                f
            })
            .collect();
        (findings, dedup, coverage)
    }
}

/// A trace event distilled to what provenance reconstruction needs.
#[derive(Debug, Clone, Copy)]
struct PEvent {
    /// Position in the trace (total order; cycles alone can tie).
    seq: u64,
    cycle: u64,
    domain: Domain,
    structure: Structure,
    pc: Option<u64>,
    verb: &'static str,
}

impl PEvent {
    fn from_event(e: &TraceEvent, seq: u64) -> PEvent {
        PEvent {
            seq,
            cycle: e.cycle,
            domain: e.domain,
            structure: e.structure,
            pc: e.pc,
            verb: event_verb(&e.kind),
        }
    }

    fn hop(&self, action: String) -> ProvenanceHop {
        ProvenanceHop {
            cycle: self.cycle,
            domain: self.domain,
            structure: Some(self.structure),
            pc: self.pc,
            action,
        }
    }
}

/// Per-secret carrier summary: the handful of "first event" records that
/// fully determine a data leak's provenance chain under the nondecreasing-
/// cycle invariant. O(structures) memory per secret.
struct SecretProv {
    addr: u64,
    value: u64,
    /// First carrying event executed in the owner's domain (the chain
    /// origin when it precedes the observation).
    first_in_domain: Option<PEvent>,
    /// First carrying event per structure, over the whole trace.
    firsts_all: [Option<PEvent>; NS],
    /// First carrying event per structure strictly after
    /// `first_in_domain.cycle`.
    firsts_after: [Option<PEvent>; NS],
}

/// Online provenance index: everything
/// [`provenance::trace_chain`](crate::provenance::trace_chain) derives from
/// the buffered trace, maintained incrementally in bounded memory.
struct ProvIndex {
    by_value: HashMap<u64, SecretProv>,
    /// First trusted-domain counter bump (M1 chain origin).
    first_bump: Option<PEvent>,
    /// Most recent trusted bump / most recent one of an earlier cycle.
    latest_bump: Option<PEvent>,
    latest_bump_prev: Option<PEvent>,
    /// First enclave-domain BTB install per (structure, training pc).
    m2_first: HashMap<(Structure, Option<u64>), PEvent>,
    /// First enclave-domain BTB install per structure, any pc.
    m2_first_any: HashMap<Structure, PEvent>,
    seq: u64,
}

impl ProvIndex {
    fn new(secrets: &SecretCatalog) -> ProvIndex {
        ProvIndex {
            by_value: secrets
                .records()
                .iter()
                .map(|r| {
                    (
                        r.value,
                        SecretProv {
                            addr: r.addr,
                            value: r.value,
                            first_in_domain: None,
                            firsts_all: [None; NS],
                            firsts_after: [None; NS],
                        },
                    )
                })
                .collect(),
            first_bump: None,
            latest_bump: None,
            latest_bump_prev: None,
            m2_first: HashMap::new(),
            m2_first_any: HashMap::new(),
            seq: 0,
        }
    }

    fn observe(&mut self, e: &TraceEvent, secrets: &SecretCatalog) {
        let seq = self.seq;
        self.seq += 1;
        let pe = PEvent::from_event(e, seq);

        // Secret carriers (scalar reads/writes and fill payloads).
        match &e.kind {
            TraceEventKind::Write { value, .. } | TraceEventKind::Read { value, .. } => {
                if let Some(rec) = secrets.identify(*value) {
                    if let Some(entry) = self.by_value.get_mut(value) {
                        entry.observe_carrier(pe, rec.owner);
                    }
                }
            }
            TraceEventKind::Fill { data, .. } => {
                let mut seen_values: Vec<u64> = Vec::new();
                for (_, rec) in secrets.scan_bytes(data) {
                    if seen_values.contains(&rec.value) {
                        continue;
                    }
                    seen_values.push(rec.value);
                    if let Some(entry) = self.by_value.get_mut(&rec.value) {
                        entry.observe_carrier(pe, rec.owner);
                    }
                }
            }
            _ => {}
        }

        // M1: trusted counter-bump window.
        if e.structure == Structure::Hpc
            && e.domain.is_trusted()
            && matches!(e.kind, TraceEventKind::CounterBump { .. })
        {
            match self.latest_bump {
                None => self.latest_bump = Some(pe),
                Some(prev) if pe.cycle > prev.cycle => {
                    self.latest_bump_prev = Some(prev);
                    self.latest_bump = Some(pe);
                }
                Some(_) => self.latest_bump = Some(pe),
            }
            if self.first_bump.is_none() {
                self.first_bump = Some(pe);
            }
        }

        // M2: enclave-trained predictor installs.
        if matches!(e.structure, Structure::Ubtb | Structure::Ftb)
            && e.domain.is_enclave()
            && matches!(e.kind, TraceEventKind::Write { .. })
        {
            self.m2_first.entry((e.structure, e.pc)).or_insert(pe);
            self.m2_first_any.entry(e.structure).or_insert(pe);
        }
    }
}

impl SecretProv {
    fn observe_carrier(&mut self, pe: PEvent, owner: Domain) {
        if self.first_in_domain.is_none() && pe.domain == owner {
            self.first_in_domain = Some(pe);
        }
        let i = pe.structure.index();
        if self.firsts_all[i].is_none() {
            self.firsts_all[i] = Some(pe);
        }
        if let Some(fid) = self.first_in_domain {
            if pe.cycle > fid.cycle && self.firsts_after[i].is_none() {
                self.firsts_after[i] = Some(pe);
            }
        }
    }
}

/// An online checker: attach it to a core's trace as a [`TraceSink`]
/// (typically with buffering disabled), run the case, then call
/// [`StreamingChecker::finish`] to obtain a [`CheckReport`] identical to
/// the batch [`check_case`](crate::checker::check_case) result.
///
/// ```
/// use teesec::paths::AccessPath;
/// use teesec::stream::StreamingChecker;
/// use teesec::testcase::TestCase;
/// use teesec_uarch::CoreConfig;
///
/// let cfg = CoreConfig::boom();
/// let tc = TestCase::new("doc", AccessPath::LoadL1Hit);
/// let checker = StreamingChecker::new(&tc, &cfg);
/// assert_eq!(checker.events_seen(), 0);
/// ```
pub struct StreamingChecker {
    case: String,
    path: crate::paths::AccessPath,
    design: String,
    secrets: SecretCatalog,
    scan: ScanState,
    prov: ProvIndex,
    /// Per-slot M1 chain (first, last trusted bump) captured when the
    /// finding was pushed, for observation-bounded window queries.
    m1_at_push: HashMap<usize, (PEvent, Option<PEvent>)>,
    last_cycle: u64,
}

impl StreamingChecker {
    /// Creates a streaming checker for one test case on one design.
    pub fn new(tc: &TestCase, cfg: &CoreConfig) -> StreamingChecker {
        let mut secrets = tc.secrets.clone();
        secrets.reindex();
        StreamingChecker {
            case: tc.name.clone(),
            path: tc.path,
            design: cfg.name.clone(),
            scan: ScanState::new(tc.mcounteren, cfg.hpm_counters, secrets.clone()),
            prov: ProvIndex::new(&secrets),
            secrets,
            m1_at_push: HashMap::new(),
            last_cycle: 0,
        }
    }

    /// Like [`StreamingChecker::new`], with plan-coverage recording on:
    /// [`StreamingChecker::finish_coverage`] then yields the case's
    /// [`CaseCoverage`] record alongside the report.
    pub fn with_coverage(tc: &TestCase, cfg: &CoreConfig) -> StreamingChecker {
        let mut checker = StreamingChecker::new(tc, cfg);
        checker.scan.enable_coverage();
        checker
    }

    /// Trace events observed so far (the streaming analog of a buffered
    /// trace's length — useful for memory-bound assertions).
    pub fn events_seen(&self) -> u64 {
        self.scan.events_seen
    }

    /// Findings discovered so far (pending classifications included).
    pub fn findings_so_far(&self) -> usize {
        self.scan.finding_count()
    }

    fn observe(&mut self, e: &TraceEvent) {
        debug_assert!(
            e.cycle >= self.last_cycle,
            "trace cycles must be nondecreasing for streaming checking"
        );
        self.last_cycle = e.cycle;

        self.prov.observe(e, &self.secrets);

        let before = self.scan.finding_count();
        self.scan.on_event(e);
        // Capture the M1 accumulation window for metadata findings at push
        // time: their observation cycle is this event's cycle, and the
        // "last trusted bump before it" is only cheap to answer *now*.
        for i in before..self.scan.finding_count() {
            let f = self.scan.finding(i);
            if f.secret.is_none() && !matches!(f.structure, Structure::Ubtb | Structure::Ftb) {
                if let Some(chain) = self.m1_window(f.cycle) {
                    self.m1_at_push.insert(i, chain);
                }
            }
        }
    }

    /// The (first, last) trusted counter bumps strictly before `obs_cycle`,
    /// per the batch chain's window query.
    fn m1_window(&self, obs_cycle: u64) -> Option<(PEvent, Option<PEvent>)> {
        let first = self.prov.first_bump.filter(|b| b.cycle < obs_cycle)?;
        let candidate = match self.prov.latest_bump {
            Some(l) if l.cycle < obs_cycle => Some(l),
            Some(_) => self.prov.latest_bump_prev,
            None => None,
        };
        let last = candidate.filter(|l| l.cycle > first.cycle && l.cycle < obs_cycle);
        Some((first, last))
    }

    /// Finalizes the scan: resolves pending classifications, runs the
    /// end-of-run snapshot scan, reconstructs provenance chains, and
    /// returns the complete report.
    pub fn finish(self, tc: &TestCase, outcome: &RunOutcome) -> CheckReport {
        self.finish_coverage(tc, outcome).0
    }

    /// Like [`StreamingChecker::finish`], additionally returning the
    /// per-case coverage record when the checker was created with
    /// [`StreamingChecker::with_coverage`] (`None` otherwise).
    pub fn finish_coverage(
        self,
        tc: &TestCase,
        outcome: &RunOutcome,
    ) -> (CheckReport, Option<CaseCoverage>) {
        let StreamingChecker {
            case,
            path,
            design,
            secrets,
            scan,
            prov,
            m1_at_push,
            ..
        } = self;
        let slot_count = scan.finding_count();
        let (mut findings, mut dedup, mut coverage) = scan.into_findings();

        let snapshot_from = findings.len();
        let mut push = |findings: &mut Vec<Finding>, f: Finding| {
            if dedup.insert(finding_key(&f)) {
                findings.push(f);
            }
        };
        scan_snapshot(tc, outcome, &secrets, &mut findings, &mut push);
        if let Some(cov) = coverage.as_mut() {
            for f in &findings[snapshot_from..] {
                cov.record_detection(f);
            }
        }

        let end_cycle = outcome.cycles;
        let provenance = findings
            .iter()
            .enumerate()
            .filter_map(|(i, f)| chain_for(f, i, end_cycle, &prov, &m1_at_push, slot_count))
            .collect();

        let report = CheckReport {
            case,
            path,
            design,
            findings,
            provenance,
        };
        let case_coverage = coverage.map(|cov| cov.finish(&report));
        (report, case_coverage)
    }
}

impl TraceSink for StreamingChecker {
    fn on_event(&mut self, event: &TraceEvent) {
        self.observe(event);
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

/// Reconstructs the provenance chain for `findings[index]` from the online
/// index — the bounded-memory equivalent of
/// [`provenance::trace_chain`](crate::provenance::trace_chain).
fn chain_for(
    finding: &Finding,
    index: usize,
    end_cycle: u64,
    prov: &ProvIndex,
    m1_at_push: &HashMap<usize, (PEvent, Option<PEvent>)>,
    slot_count: usize,
) -> Option<ProvenanceChain> {
    let (obs_cycle, obs_is_snapshot) = if finding.cycle == 0 || finding.pc.is_none() {
        (end_cycle, true)
    } else {
        (finding.cycle, false)
    };
    let observation = ProvenanceHop {
        cycle: obs_cycle,
        domain: finding.observer,
        structure: Some(finding.structure),
        pc: if obs_is_snapshot { None } else { finding.pc },
        action: if obs_is_snapshot {
            format!(
                "residue still valid in the {} when the run ended",
                finding.structure.display_name()
            )
        } else {
            format!(
                "observing access in {:?} domain ({})",
                finding.observer, finding.detail
            )
        },
    };

    let (owner, origin, retention) = match (&finding.secret, finding.principle) {
        (Some(rec), _) => {
            let entry = prov.by_value.get(&rec.value)?;
            let owner = rec.owner;
            // The first in-domain carrier is the origin when it precedes
            // the observation; otherwise the secret's architectural seed
            // is.
            let fid = entry.first_in_domain.filter(|e| e.cycle <= obs_cycle);
            let (origin, origin_cycle, origin_structure, candidates) = match fid {
                Some(e) => (
                    e.hop(format!("{} in its owner's domain", e.verb)),
                    e.cycle,
                    Some(e.structure),
                    &entry.firsts_after,
                ),
                None => (
                    ProvenanceHop {
                        cycle: 0,
                        domain: owner,
                        structure: None,
                        pc: None,
                        action: format!(
                            "secret {:#x} seeded at address {:#x} before the run",
                            entry.value, entry.addr
                        ),
                    },
                    0,
                    None,
                    &entry.firsts_all,
                ),
            };
            // Retention: the first carrier per structure between origin
            // and observation, in trace order (first-per-structure is
            // exactly what the batch seen-set loop keeps).
            let mut carriers: Vec<&PEvent> = candidates
                .iter()
                .flatten()
                .filter(|e| {
                    Some(e.structure) != origin_structure
                        && e.structure != finding.structure
                        && e.cycle > origin_cycle
                        && (obs_is_snapshot || e.cycle < obs_cycle)
                        && e.cycle <= obs_cycle
                })
                .collect();
            carriers.sort_by_key(|e| e.seq);
            let mut retention: Vec<ProvenanceHop> =
                carriers.iter().map(|e| e.hop(e.verb.to_string())).collect();
            // A snapshot residue's own arrival is part of the story too.
            if obs_is_snapshot {
                let arrival =
                    candidates[finding.structure.index()].filter(|e| e.cycle > origin_cycle);
                if let Some(a) = arrival {
                    retention.push(a.hop(format!("{} and was never flushed", a.verb)));
                    retention.sort_by_key(|h| h.cycle);
                }
            }
            (owner, origin, retention)
        }
        (None, Principle::P2) if matches!(finding.structure, Structure::Ubtb | Structure::Ftb) => {
            let train = match finding.pc {
                None => prov.m2_first_any.get(&finding.structure)?,
                Some(_) => prov.m2_first.get(&(finding.structure, finding.pc))?,
            };
            (
                train.domain,
                train.hop("branch trained inside the enclave installed this entry".to_string()),
                Vec::new(),
            )
        }
        (None, _) => {
            // M1 window: captured at push time for in-trace findings
            // (whose observation is their own cycle); recomputed against
            // the end of the run for snapshot-attributed ones.
            let (first, last) = if !obs_is_snapshot && index < slot_count {
                *m1_at_push.get(&index)?
            } else {
                let first = prov.first_bump.filter(|b| b.cycle < obs_cycle)?;
                let candidate = match prov.latest_bump {
                    Some(l) if l.cycle < obs_cycle => Some(l),
                    Some(_) => prov.latest_bump_prev,
                    None => None,
                };
                (
                    first,
                    candidate.filter(|l| l.cycle > first.cycle && l.cycle < obs_cycle),
                )
            };
            let retention = last
                .map(|e| vec![e.hop("last event counted during trusted execution".to_string())])
                .unwrap_or_default();
            (
                first.domain,
                first.hop("first event counted during trusted execution".to_string()),
                retention,
            )
        }
    };

    Some(ProvenanceChain {
        finding_index: index,
        owner,
        observer: finding.observer,
        retention_cycles: observation.cycle.saturating_sub(origin.cycle),
        origin,
        retention,
        observation,
    })
}
