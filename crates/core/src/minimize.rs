//! Automatic test-case minimization: shrink a diverging or leaking case to
//! a minimal gadget sequence while preserving its verdict.
//!
//! A fuzzer-found case carries lifecycle scaffolding, warm-up accesses and
//! probe sequences that may have nothing to do with the actual finding.
//! [`minimize_case`] runs delta-debugging (ddmin-style chunk removal) over
//! the case's host and enclave step lists: repeatedly delete chunks of
//! steps, keep any deletion under which a caller-supplied predicate still
//! holds, and halve the chunk size until single-step granularity. The
//! predicate is arbitrary — "still reports leak class D1"
//! ([`preserves_classes`]) and "still diverges under the oracle"
//! ([`preserves_divergence`]) are provided. Predicate panics (a shrunken
//! case that crashes the simulator) count as *not preserved*, so
//! minimization is safe to run unattended.

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

use serde::{Deserialize, Serialize};

use teesec_uarch::config::CoreConfig;

use crate::checker::check_case;
use crate::diff::{diff_case, DiffOptions};
use crate::report::LeakClass;
use crate::runner::run_case;
use crate::testcase::TestCase;

/// The result of minimizing one case.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Minimized {
    /// The minimized case (same name, fewer steps, same verdict).
    pub case: TestCase,
    /// Step count before minimization.
    pub original_steps: usize,
    /// Step count after minimization.
    pub final_steps: usize,
    /// Predicate evaluations spent.
    pub trials: usize,
}

impl Minimized {
    /// Fraction of steps removed, in [0, 1].
    pub fn shrink_ratio(&self) -> f64 {
        if self.original_steps == 0 {
            return 0.0;
        }
        1.0 - self.final_steps as f64 / self.original_steps as f64
    }
}

/// Which step list a ddmin pass is operating on.
#[derive(Debug, Clone, Copy)]
enum StepList {
    Host,
    Enclave(usize),
}

fn list_len(tc: &TestCase, which: StepList) -> usize {
    match which {
        StepList::Host => tc.host_steps.len(),
        StepList::Enclave(i) => tc.enclave_steps[i].len(),
    }
}

fn remove_range(tc: &mut TestCase, which: StepList, start: usize, end: usize) {
    match which {
        StepList::Host => drop(tc.host_steps.drain(start..end)),
        StepList::Enclave(i) => drop(tc.enclave_steps[i].drain(start..end)),
    }
}

/// Evaluates the predicate, treating a panic inside it (e.g. a shrunken
/// case that trips a simulator assertion) as "verdict not preserved".
fn try_keep<F: FnMut(&TestCase) -> bool>(keep: &mut F, candidate: &TestCase) -> bool {
    catch_unwind(AssertUnwindSafe(|| keep(candidate))).unwrap_or(false)
}

/// One ddmin sweep over a single step list. Returns whether anything was
/// removed.
fn ddmin_list<F: FnMut(&TestCase) -> bool>(
    current: &mut TestCase,
    which: StepList,
    keep: &mut F,
    trials: &mut usize,
) -> bool {
    let mut changed = false;
    let mut chunk = (list_len(current, which) / 2).max(1);
    loop {
        if list_len(current, which) == 0 {
            break;
        }
        let mut removed_any = false;
        let mut start = 0;
        while start < list_len(current, which) {
            let end = (start + chunk).min(list_len(current, which));
            let mut candidate = current.clone();
            remove_range(&mut candidate, which, start, end);
            *trials += 1;
            if try_keep(keep, &candidate) {
                *current = candidate;
                removed_any = true;
                changed = true;
                // The next chunk now starts at the same index.
            } else {
                start = end;
            }
        }
        if chunk == 1 {
            if !removed_any {
                break;
            }
        } else if !removed_any {
            chunk = (chunk / 2).max(1);
        }
    }
    changed
}

/// Minimizes `tc` under `keep`: the largest step deletions that still
/// satisfy the predicate are applied, down to single-step granularity,
/// iterated to a fixpoint across the host and every enclave program.
///
/// `keep` must hold on `tc` itself; if it does not (the "finding" is not
/// reproducible), the case is returned unshrunk with `trials == 1`.
pub fn minimize_case<F: FnMut(&TestCase) -> bool>(tc: &TestCase, mut keep: F) -> Minimized {
    let original_steps = tc.step_count();
    let mut trials = 1usize;
    if !try_keep(&mut keep, tc) {
        return Minimized {
            case: tc.clone(),
            original_steps,
            final_steps: original_steps,
            trials,
        };
    }
    let mut current = tc.clone();
    loop {
        let mut changed = false;
        changed |= ddmin_list(&mut current, StepList::Host, &mut keep, &mut trials);
        for i in 0..current.enclave_steps.len() {
            changed |= ddmin_list(&mut current, StepList::Enclave(i), &mut keep, &mut trials);
        }
        if !changed {
            break;
        }
    }
    let final_steps = current.step_count();
    Minimized {
        case: current,
        original_steps,
        final_steps,
        trials,
    }
}

/// Predicate: the case still reports every leak class in `classes` when run
/// and checked on `cfg`. Build failures and non-reproducing runs fail the
/// predicate.
pub fn preserves_classes<'a>(
    cfg: &'a CoreConfig,
    classes: &'a BTreeSet<LeakClass>,
) -> impl FnMut(&TestCase) -> bool + 'a {
    move |tc: &TestCase| {
        let Ok(outcome) = run_case(tc, cfg) else {
            return false;
        };
        let report = check_case(tc, &outcome, cfg);
        let found = report.classes();
        classes.iter().all(|c| found.contains(c))
    }
}

/// Predicate: the case still diverges under the differential oracle with
/// `opts` (fault injections included — this is how oracle self-tests shrink
/// their repro cases).
pub fn preserves_divergence<'a>(
    cfg: &'a CoreConfig,
    opts: &'a DiffOptions,
) -> impl FnMut(&TestCase) -> bool + 'a {
    move |tc: &TestCase| matches!(diff_case(tc, cfg, opts), Ok(v) if v.diverged())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testcase::{Actor, Step};
    use teesec_isa::inst::MemWidth;

    fn case_with_noise(payload_at: usize, noise: usize) -> TestCase {
        let mut tc = TestCase::new("min_test", crate::paths::AccessPath::LoadL1Hit);
        for i in 0..noise {
            if i == payload_at {
                tc.push(
                    Actor::Host,
                    Step::Load {
                        addr: 0x8030_0000,
                        width: MemWidth::D,
                    },
                );
            }
            tc.push(Actor::Host, Step::Nops(1));
        }
        tc
    }

    #[test]
    fn shrinks_to_the_single_load_the_predicate_needs() {
        let tc = case_with_noise(10, 40);
        let min = minimize_case(&tc, |c| {
            c.host_steps
                .iter()
                .any(|s| matches!(s, Step::Load { addr, .. } if *addr == 0x8030_0000))
        });
        assert_eq!(min.final_steps, 1, "only the load survives");
        assert!(min.shrink_ratio() > 0.9);
        assert!(min.trials > 1);
    }

    #[test]
    fn non_reproducing_case_is_returned_unshrunk() {
        let tc = case_with_noise(0, 10);
        let min = minimize_case(&tc, |_| false);
        assert_eq!(min.final_steps, min.original_steps);
        assert_eq!(min.trials, 1);
    }

    #[test]
    fn panicking_predicate_counts_as_not_preserved() {
        let tc = case_with_noise(5, 20);
        // Panics whenever the load is missing; holds when it is present.
        let min = minimize_case(&tc, |c| {
            if c.host_steps.iter().any(|s| matches!(s, Step::Load { .. })) {
                true
            } else {
                panic!("simulated simulator crash");
            }
        });
        assert!(
            min.case
                .host_steps
                .iter()
                .any(|s| matches!(s, Step::Load { .. })),
            "the load survives even though its removal panics the predicate"
        );
        assert_eq!(min.final_steps, 1);
    }

    #[test]
    fn minimizes_enclave_programs_too() {
        let mut tc = TestCase::new("min_enclave", crate::paths::AccessPath::LoadL1Hit);
        for _ in 0..12 {
            tc.push(Actor::Enclave(0), Step::Nops(2));
        }
        tc.push(
            Actor::Enclave(0),
            Step::Store {
                addr: 0x8030_0008,
                value: 7,
                width: MemWidth::D,
            },
        );
        let min = minimize_case(&tc, |c| {
            c.enclave_steps[0]
                .iter()
                .any(|s| matches!(s, Step::Store { .. }))
        });
        assert_eq!(min.final_steps, 1);
    }
}
