//! Checker soundness: hand-built cases that must NOT produce findings —
//! benign host work, authorized monitor accesses, enclaves touching their
//! own secrets — plus classification coherence on leaking ones. A checker
//! that cries wolf is as useless as one that misses leaks.

use teesec::checker::check_case;
use teesec::paths::AccessPath;
use teesec::report::Principle;
use teesec::runner::run_case;
use teesec::testcase::{Actor, Step, TestCase};
use teesec_isa::inst::MemWidth;
use teesec_tee::{layout, SbiCall};
use teesec_uarch::trace::Domain;
use teesec_uarch::CoreConfig;

fn run_and_check(tc: &TestCase, cfg: &CoreConfig) -> teesec::CheckReport {
    let outcome = run_case(tc, cfg).expect("build");
    assert_eq!(
        outcome.exit,
        teesec_uarch::RunExit::Halted,
        "{} must halt",
        tc.name
    );
    check_case(tc, &outcome, cfg)
}

#[test]
fn host_only_work_is_clean() {
    // No secrets ever seeded in trusted regions; plenty of memory traffic.
    for cfg in [CoreConfig::boom(), CoreConfig::xiangshan()] {
        let mut tc = TestCase::new("host_only", AccessPath::LoadL1Hit);
        for k in 0..16u64 {
            tc.push(
                Actor::Host,
                Step::Store {
                    addr: layout::SHARED_BASE + 8 * k,
                    value: 0x1000 + k,
                    width: MemWidth::D,
                },
            );
            tc.push(
                Actor::Host,
                Step::Load {
                    addr: layout::SHARED_BASE + 8 * k,
                    width: MemWidth::D,
                },
            );
        }
        let report = run_and_check(&tc, &cfg);
        assert!(report.clean(), "{}: {:?}", cfg.name, report.findings);
    }
}

#[test]
fn enclave_touching_its_own_secrets_without_probe_reports_only_residue() {
    // The enclave loads its own secrets; the host never probes. Transient
    // RF leaks must NOT be reported (authorized), but unflushed cache
    // residue legitimately is (P1 "remains in state"), unclassified.
    let cfg = CoreConfig::boom();
    let mut tc = TestCase::new("self_touch", AccessPath::LoadL1Hit);
    let addr = layout::enclave_data(0);
    tc.secrets.seed(addr, Domain::Enclave(0));
    tc.push(
        Actor::Enclave(0),
        Step::Load {
            addr,
            width: MemWidth::D,
        },
    );
    tc.push(Actor::Enclave(0), Step::ConsumeLast);
    tc.push(
        Actor::Host,
        Step::Sbi {
            call: SbiCall::CreateEnclave,
            enclave: 0,
        },
    );
    tc.push(
        Actor::Host,
        Step::Sbi {
            call: SbiCall::RunEnclave,
            enclave: 0,
        },
    );
    let report = run_and_check(&tc, &cfg);
    for f in &report.findings {
        assert_eq!(f.class, None, "no Table 3 class without a probe: {f:?}");
        assert_eq!(f.principle, Principle::P1);
        assert!(
            matches!(
                f.structure,
                teesec_uarch::trace::Structure::L1d
                    | teesec_uarch::trace::Structure::L2
                    | teesec_uarch::trace::Structure::Lfb
            ),
            "only cache/buffer residue expected: {f:?}"
        );
    }
}

#[test]
fn hardened_design_is_clean_even_on_the_canonical_attacks() {
    let cfg = CoreConfig::hardened_reference();
    for path in [
        AccessPath::LoadL1Hit,
        AccessPath::LoadMemMiss,
        AccessPath::PtwPoisonedRoot,
        AccessPath::SmScrub,
        AccessPath::HpcRead,
        AccessPath::BtbLookup,
    ] {
        let Ok(tc) =
            teesec::assemble::assemble_case(path, teesec::assemble::CaseParams::default(), &cfg)
        else {
            continue;
        };
        let report = run_and_check(&tc, &cfg);
        assert!(
            report.findings.iter().all(|f| f.class.is_none()),
            "{path:?} must not classify on the hardened design: {:?}",
            report.findings
        );
    }
}

#[test]
fn attest_alone_does_not_classify_a_leak() {
    // The monitor reading enclave memory (attestation) is authorized; only
    // cache residue (class-less P1) may be reported.
    let cfg = CoreConfig::xiangshan();
    let mut tc = TestCase::new("attest_only", AccessPath::LoadL1Hit);
    tc.secrets.seed(layout::enclave_data(0), Domain::Enclave(0));
    tc.push(
        Actor::Host,
        Step::Sbi {
            call: SbiCall::CreateEnclave,
            enclave: 0,
        },
    );
    tc.push(
        Actor::Host,
        Step::Sbi {
            call: SbiCall::AttestEnclave,
            enclave: 0,
        },
    );
    let report = run_and_check(&tc, &cfg);
    assert!(
        report.findings.iter().all(|f| f.class.is_none()),
        "attestation is within the TCB: {:?}",
        report.findings
    );
}

#[test]
fn untouched_counters_do_not_raise_m1() {
    // Host reads counters with no enclave having run: no trusted taint.
    let cfg = CoreConfig::boom();
    let mut tc = TestCase::new("cold_counters", AccessPath::HpcRead);
    for i in 0..4 {
        tc.push(
            Actor::Host,
            Step::CsrRead {
                csr: teesec_isa::csr::hpmcounter_csr(i),
            },
        );
    }
    let report = run_and_check(&tc, &cfg);
    assert!(report.clean(), "{:?}", report.findings);
}

#[test]
fn classified_findings_always_carry_coherent_metadata() {
    // On a leaking case, every classified finding's structure matches the
    // class's Table 3 source column.
    let cfg = CoreConfig::boom();
    let tc = teesec::assemble::assemble_case(
        AccessPath::LoadL1Hit,
        teesec::assemble::CaseParams::default(),
        &cfg,
    )
    .unwrap();
    let report = run_and_check(&tc, &cfg);
    assert!(!report.classes().is_empty());
    for f in &report.findings {
        let Some(class) = f.class else { continue };
        match class.source() {
            "RF" => assert_eq!(f.structure, teesec_uarch::trace::Structure::RegFile),
            "LFB" => assert_eq!(f.structure, teesec_uarch::trace::Structure::Lfb),
            "HPC" => assert!(matches!(
                f.structure,
                teesec_uarch::trace::Structure::Hpc | teesec_uarch::trace::Structure::StoreBuffer
            )),
            "BPU" => assert!(matches!(
                f.structure,
                teesec_uarch::trace::Structure::Ubtb | teesec_uarch::trace::Structure::Ftb
            )),
            other => panic!("unknown source {other}"),
        }
        if !class.is_metadata() {
            assert!(
                f.secret.is_some(),
                "data leaks carry the traced secret: {f:?}"
            );
        }
    }
}
