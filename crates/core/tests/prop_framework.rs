//! Property-based tests of the TEESec framework layer: secret traceability,
//! checker soundness on synthetic traces, and assembler/fuzzer robustness
//! over the whole parameter space.

use proptest::prelude::*;

use teesec::assemble::{assemble_case, Attacker, CaseParams, Lifecycle, Victim};
use teesec::paths::AccessPath;
use teesec::secret::{secret_for, SecretCatalog};
use teesec_isa::inst::MemWidth;
use teesec_uarch::trace::Domain;
use teesec_uarch::CoreConfig;

fn any_params() -> impl Strategy<Value = CaseParams> {
    (
        prop::sample::select(vec![Victim::Enclave, Victim::SecurityMonitor, Victim::Host]),
        prop::sample::select(vec![Attacker::Host, Attacker::Enclave1]),
        (0u64..0x100).prop_map(|o| o * 8),
        prop::sample::select(vec![MemWidth::B, MemWidth::H, MemWidth::W, MemWidth::D]),
        any::<bool>(),
        prop::sample::select(vec![
            Lifecycle::Stop,
            Lifecycle::StopResumeStop,
            Lifecycle::Exit,
        ]),
    )
        .prop_map(
            |(victim, attacker, offset, width, warm_via_stores, lifecycle)| CaseParams {
                victim,
                attacker,
                offset,
                width,
                warm_via_stores,
                lifecycle,
                irq_at: None,
                restricted_counters: false,
                reprobe: false,
            },
        )
}

fn any_path() -> impl Strategy<Value = AccessPath> {
    prop::sample::select(AccessPath::all().to_vec())
}

proptest! {
    /// Secrets are injective over distinct addresses within any realistic
    /// region (collision would break leak attribution).
    #[test]
    fn secrets_are_injective(a in any::<u64>(), b in any::<u64>()) {
        if a != b {
            prop_assert_ne!(secret_for(a), secret_for(b));
        }
    }

    /// The catalog finds a seeded secret at any 8-aligned offset of a scan
    /// buffer and never reports false positives against random bytes.
    #[test]
    fn catalog_scan_is_exact(
        addr in 0x8000_0000u64..0x9000_0000,
        slot in 0usize..8,
        noise in prop::collection::vec(any::<u8>(), 64..65),
    ) {
        let mut c = SecretCatalog::new();
        let rec = c.seed(addr, Domain::Enclave(0));
        let mut buf = noise;
        // Avoid the astronomically unlikely accidental match in noise by
        // checking exactness instead: plant the secret, expect exactly it.
        for w in buf.chunks_exact_mut(8) {
            if u64::from_le_bytes(w.try_into().unwrap()) == rec.value {
                w[0] ^= 1;
            }
        }
        buf[slot * 8..slot * 8 + 8].copy_from_slice(&rec.value.to_le_bytes());
        let hits = c.scan_bytes(&buf);
        prop_assert_eq!(hits.len(), 1);
        prop_assert_eq!(hits[0].0, slot * 8);
        prop_assert_eq!(hits[0].1.addr, addr);
    }

    /// The gadget assembler is total over the parameter space: every
    /// (path, params) pair either assembles or is explicitly skipped, and
    /// assembled cases always carry at least one seeded secret and at least
    /// one probe step.
    #[test]
    fn assembler_is_total_and_wellformed(path in any_path(), params in any_params()) {
        for cfg in [CoreConfig::boom(), CoreConfig::xiangshan()] {
            // An explicit skip (Err) is fine; assembled cases must be
            // well-formed.
            if let Ok(tc) = assemble_case(path, params, &cfg) {
                prop_assert!(!tc.secrets.is_empty(), "{}: no secrets", tc.name);
                prop_assert!(tc.step_count() > 0, "{}: no steps", tc.name);
                prop_assert!(tc.name.starts_with(path.id()));
            }
        }
    }

    /// Assembled cases always lower to valid, assemblable RISC-V.
    #[test]
    fn assembled_cases_lower_to_valid_code(path in any_path(), params in any_params()) {
        let cfg = CoreConfig::boom();
        if let Ok(tc) = assemble_case(path, params, &cfg) {
            let mut asm = teesec_isa::asm::Assembler::new(teesec_tee::layout::HOST_BASE);
            teesec::testcase::lower_steps(
                &mut asm,
                &tc.host_steps,
                teesec_tee::layout::HOST_BASE,
                "prop",
            );
            prop_assert!(asm.assemble().is_ok(), "host code must assemble for {}", tc.name);
            for (i, steps) in tc.enclave_steps.iter().enumerate() {
                let base = teesec_tee::layout::enclave_base(i);
                let mut easm = teesec_isa::asm::Assembler::new(base);
                teesec::testcase::lower_steps(&mut easm, steps, base, "prop_e");
                prop_assert!(easm.assemble().is_ok(), "enclave {i} code must assemble");
            }
        }
    }
}
