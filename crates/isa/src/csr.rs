//! Control and status register address map and field layouts.
//!
//! Only the CSRs that matter for TEE verification are modeled: trap handling,
//! PMP configuration, address translation (`satp`) and the hardware
//! performance counters whose leakage the paper's case M1 demonstrates.

use serde::{Deserialize, Serialize};

use crate::priv_level::PrivLevel;

/// A 12-bit CSR address.
pub type CsrAddr = u16;

// Machine-level CSRs.
/// Machine status register.
pub const MSTATUS: CsrAddr = 0x300;
/// Machine exception delegation.
pub const MEDELEG: CsrAddr = 0x302;
/// Machine interrupt delegation.
pub const MIDELEG: CsrAddr = 0x303;
/// Machine interrupt enable.
pub const MIE: CsrAddr = 0x304;
/// Machine trap vector.
pub const MTVEC: CsrAddr = 0x305;
/// Machine counter enable (gates S/U access to the `cycle`/`hpm` counters).
pub const MCOUNTEREN: CsrAddr = 0x306;
/// Machine scratch.
pub const MSCRATCH: CsrAddr = 0x340;
/// Machine exception PC.
pub const MEPC: CsrAddr = 0x341;
/// Machine trap cause.
pub const MCAUSE: CsrAddr = 0x342;
/// Machine trap value (faulting address).
pub const MTVAL: CsrAddr = 0x343;
/// Machine interrupt pending.
pub const MIP: CsrAddr = 0x344;

/// First PMP configuration register (`pmpcfg0`). RV64 uses even-numbered
/// pmpcfg registers, each packing 8 entry configurations.
pub const PMPCFG0: CsrAddr = 0x3A0;
/// Second RV64 PMP configuration register (`pmpcfg2`, entries 8..16).
pub const PMPCFG2: CsrAddr = 0x3A2;
/// First PMP address register (`pmpaddr0`).
pub const PMPADDR0: CsrAddr = 0x3B0;
/// Number of PMP entries modeled (matches Rocket/BOOM's default of 16).
pub const PMP_ENTRY_COUNT: usize = 16;

/// Machine cycle counter.
pub const MCYCLE: CsrAddr = 0xB00;
/// Machine instructions-retired counter.
pub const MINSTRET: CsrAddr = 0xB02;
/// First machine hardware-performance event counter (`mhpmcounter3`).
pub const MHPMCOUNTER3: CsrAddr = 0xB03;
/// First machine hardware-performance event selector (`mhpmevent3`).
pub const MHPMEVENT3: CsrAddr = 0x323;
/// Number of programmable HPM counters (`mhpmcounter3..=mhpmcounter31`).
pub const HPM_COUNTER_COUNT: usize = 29;

// Supervisor-level CSRs.
/// Supervisor status (restricted view of mstatus).
pub const SSTATUS: CsrAddr = 0x100;
/// Supervisor interrupt enable.
pub const SIE: CsrAddr = 0x104;
/// Supervisor trap vector.
pub const STVEC: CsrAddr = 0x105;
/// Supervisor counter enable.
pub const SCOUNTEREN: CsrAddr = 0x106;
/// Supervisor scratch.
pub const SSCRATCH: CsrAddr = 0x140;
/// Supervisor exception PC.
pub const SEPC: CsrAddr = 0x141;
/// Supervisor trap cause.
pub const SCAUSE: CsrAddr = 0x142;
/// Supervisor trap value.
pub const STVAL: CsrAddr = 0x143;
/// Supervisor interrupt pending.
pub const SIP: CsrAddr = 0x144;
/// Supervisor address translation and protection (root page-table pointer).
pub const SATP: CsrAddr = 0x180;

// User-readable counters.
/// User-visible cycle counter.
pub const CYCLE: CsrAddr = 0xC00;
/// User-visible time counter.
pub const TIME: CsrAddr = 0xC01;
/// User-visible instret counter.
pub const INSTRET: CsrAddr = 0xC02;
/// First user-visible HPM counter (`hpmcounter3`).
pub const HPMCOUNTER3: CsrAddr = 0xC03;

/// The `pmpcfgN` CSR holding the configuration byte for PMP entry `i`
/// (RV64 packing: 8 entries per even-numbered register).
pub fn pmpcfg_csr_for_entry(i: usize) -> CsrAddr {
    assert!(i < PMP_ENTRY_COUNT, "pmp entry {i} out of range");
    if i < 8 {
        PMPCFG0
    } else {
        PMPCFG2
    }
}

/// The `pmpaddrN` CSR for PMP entry `i`.
pub fn pmpaddr_csr_for_entry(i: usize) -> CsrAddr {
    assert!(i < PMP_ENTRY_COUNT, "pmp entry {i} out of range");
    PMPADDR0 + i as CsrAddr
}

/// `mhpmcounterN` for programmable counter index `i` (0 → counter 3).
pub fn mhpmcounter_csr(i: usize) -> CsrAddr {
    assert!(i < HPM_COUNTER_COUNT, "hpm index {i} out of range");
    MHPMCOUNTER3 + i as CsrAddr
}

/// `hpmcounterN` (user-readable shadow) for programmable counter index `i`.
pub fn hpmcounter_csr(i: usize) -> CsrAddr {
    assert!(i < HPM_COUNTER_COUNT, "hpm index {i} out of range");
    HPMCOUNTER3 + i as CsrAddr
}

/// The minimum privilege required to *access* a CSR, per the standard
/// encoding (bits 9:8 of the address).
pub fn required_privilege(addr: CsrAddr) -> PrivLevel {
    match (addr >> 8) & 0b11 {
        0b00 => PrivLevel::User,
        0b01 => PrivLevel::Supervisor,
        // 0b10 is hypervisor space; treat as machine for this model.
        _ => PrivLevel::Machine,
    }
}

/// `true` if the CSR is read-only by encoding (top two bits == 0b11).
pub fn is_read_only(addr: CsrAddr) -> bool {
    (addr >> 10) & 0b11 == 0b11
}

/// Field views of the `mstatus` register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Mstatus(pub u64);

impl Mstatus {
    /// Supervisor interrupt enable bit.
    pub const SIE_BIT: u64 = 1 << 1;
    /// Machine interrupt enable bit.
    pub const MIE_BIT: u64 = 1 << 3;
    /// Supervisor previous interrupt enable.
    pub const SPIE_BIT: u64 = 1 << 5;
    /// Machine previous interrupt enable.
    pub const MPIE_BIT: u64 = 1 << 7;
    /// Supervisor previous privilege (one bit).
    pub const SPP_BIT: u64 = 1 << 8;
    /// Shift of the two-bit machine previous privilege field.
    pub const MPP_SHIFT: u32 = 11;
    /// Modify-privilege (load/store as MPP) bit.
    pub const MPRV_BIT: u64 = 1 << 17;
    /// Permit supervisor user-memory access.
    pub const SUM_BIT: u64 = 1 << 18;

    /// Reads the MPP field.
    pub fn mpp(self) -> PrivLevel {
        PrivLevel::from_encoding((self.0 >> Self::MPP_SHIFT) & 0b11).unwrap_or(PrivLevel::Machine)
    }

    /// Writes the MPP field.
    pub fn set_mpp(&mut self, p: PrivLevel) {
        self.0 = (self.0 & !(0b11 << Self::MPP_SHIFT)) | (p.encoding() << Self::MPP_SHIFT);
    }

    /// Reads the SPP field.
    pub fn spp(self) -> PrivLevel {
        if self.0 & Self::SPP_BIT != 0 {
            PrivLevel::Supervisor
        } else {
            PrivLevel::User
        }
    }

    /// Writes the SPP field. Machine is clamped to Supervisor (SPP is one bit).
    pub fn set_spp(&mut self, p: PrivLevel) {
        if p.dominates(PrivLevel::Supervisor) {
            self.0 |= Self::SPP_BIT;
        } else {
            self.0 &= !Self::SPP_BIT;
        }
    }

    /// Machine interrupt-enable flag.
    pub fn mie(self) -> bool {
        self.0 & Self::MIE_BIT != 0
    }

    /// Sets/clears the machine interrupt-enable flag.
    pub fn set_mie(&mut self, on: bool) {
        if on {
            self.0 |= Self::MIE_BIT;
        } else {
            self.0 &= !Self::MIE_BIT;
        }
    }

    /// Supervisor interrupt-enable flag.
    pub fn sie(self) -> bool {
        self.0 & Self::SIE_BIT != 0
    }

    /// Sets/clears the supervisor interrupt-enable flag.
    pub fn set_sie(&mut self, on: bool) {
        if on {
            self.0 |= Self::SIE_BIT;
        } else {
            self.0 &= !Self::SIE_BIT;
        }
    }
}

/// Field views of the `satp` register (sv39 only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Satp(pub u64);

impl Satp {
    /// The sv39 mode encoding in `satp.MODE`.
    pub const MODE_SV39: u64 = 8;
    /// The bare (no translation) mode encoding.
    pub const MODE_BARE: u64 = 0;

    /// Builds an sv39 `satp` value from a root page-table *physical address*.
    ///
    /// # Panics
    ///
    /// Panics if the address is not page-aligned.
    pub fn sv39(root_pa: u64) -> Satp {
        assert_eq!(root_pa & 0xFFF, 0, "page table root must be page aligned");
        Satp((Self::MODE_SV39 << 60) | (root_pa >> 12))
    }

    /// The translation mode field.
    pub fn mode(self) -> u64 {
        self.0 >> 60
    }

    /// `true` when sv39 translation is active.
    pub fn is_sv39(self) -> bool {
        self.mode() == Self::MODE_SV39
    }

    /// Physical address of the root page table.
    pub fn root_pa(self) -> u64 {
        (self.0 & ((1u64 << 44) - 1)) << 12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmp_csr_mapping() {
        assert_eq!(pmpcfg_csr_for_entry(0), PMPCFG0);
        assert_eq!(pmpcfg_csr_for_entry(7), PMPCFG0);
        assert_eq!(pmpcfg_csr_for_entry(8), PMPCFG2);
        assert_eq!(pmpaddr_csr_for_entry(0), 0x3B0);
        assert_eq!(pmpaddr_csr_for_entry(15), 0x3BF);
    }

    #[test]
    fn privilege_from_address_bits() {
        assert_eq!(required_privilege(CYCLE), PrivLevel::User);
        assert_eq!(required_privilege(SATP), PrivLevel::Supervisor);
        assert_eq!(required_privilege(MSTATUS), PrivLevel::Machine);
        assert_eq!(required_privilege(PMPCFG0), PrivLevel::Machine);
    }

    #[test]
    fn read_only_encoding() {
        assert!(is_read_only(CYCLE));
        assert!(is_read_only(HPMCOUNTER3));
        assert!(!is_read_only(MCYCLE));
        assert!(!is_read_only(SATP));
    }

    #[test]
    fn mstatus_mpp_roundtrip() {
        let mut m = Mstatus::default();
        for p in [PrivLevel::User, PrivLevel::Supervisor, PrivLevel::Machine] {
            m.set_mpp(p);
            assert_eq!(m.mpp(), p);
        }
    }

    #[test]
    fn mstatus_spp_clamps_machine() {
        let mut m = Mstatus::default();
        m.set_spp(PrivLevel::Machine);
        assert_eq!(m.spp(), PrivLevel::Supervisor);
        m.set_spp(PrivLevel::User);
        assert_eq!(m.spp(), PrivLevel::User);
    }

    #[test]
    fn satp_sv39_roundtrip() {
        let s = Satp::sv39(0x8020_3000);
        assert!(s.is_sv39());
        assert_eq!(s.root_pa(), 0x8020_3000);
    }

    #[test]
    #[should_panic(expected = "page aligned")]
    fn satp_rejects_unaligned_root() {
        let _ = Satp::sv39(0x8020_3001);
    }

    #[test]
    fn hpm_counter_addresses() {
        assert_eq!(mhpmcounter_csr(0), 0xB03);
        assert_eq!(mhpmcounter_csr(28), 0xB1F);
        assert_eq!(hpmcounter_csr(28), 0xC1F);
    }
}
