//! The sv39 virtual-memory format.
//!
//! The hardware page-table walker in the core model traverses real page
//! tables built in simulated physical memory; this module supplies the
//! address-split and page-table-entry encodings it needs. Implicit PTW
//! traffic is the access path behind the paper's leakage case D2.

use serde::{Deserialize, Serialize};

use crate::priv_level::PrivLevel;

/// Bytes per page.
pub const PAGE_SIZE: u64 = 4096;
/// Number of sv39 page-table levels.
pub const SV39_LEVELS: usize = 3;
/// PTEs per page table.
pub const PTES_PER_TABLE: u64 = 512;

/// A virtual address (39 significant bits under sv39).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VirtAddr(pub u64);

/// A physical address.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PhysAddr(pub u64);

impl VirtAddr {
    /// The virtual page number at a given level (2 = root, 0 = leaf).
    pub fn vpn(self, level: usize) -> u64 {
        assert!(level < SV39_LEVELS, "sv39 has 3 levels");
        (self.0 >> (12 + 9 * level)) & 0x1FF
    }

    /// The within-page offset.
    pub fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// The containing virtual page base.
    pub fn page_base(self) -> VirtAddr {
        VirtAddr(self.0 & !(PAGE_SIZE - 1))
    }

    /// `true` if the address is canonical under sv39 (bits 63..39 are a sign
    /// extension of bit 38).
    pub fn is_canonical(self) -> bool {
        let top = self.0 >> 38;
        top == 0 || top == (1 << 26) - 1
    }
}

impl PhysAddr {
    /// The physical page number.
    pub fn ppn(self) -> u64 {
        self.0 >> 12
    }

    /// The containing physical page base.
    pub fn page_base(self) -> PhysAddr {
        PhysAddr(self.0 & !(PAGE_SIZE - 1))
    }

    /// The within-page offset.
    pub fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }
}

/// A decoded sv39 page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Pte(pub u64);

impl Pte {
    /// Valid bit.
    pub const V: u64 = 1 << 0;
    /// Read permission.
    pub const R: u64 = 1 << 1;
    /// Write permission.
    pub const W: u64 = 1 << 2;
    /// Execute permission.
    pub const X: u64 = 1 << 3;
    /// User-accessible.
    pub const U: u64 = 1 << 4;
    /// Global mapping.
    pub const G: u64 = 1 << 5;
    /// Accessed.
    pub const A: u64 = 1 << 6;
    /// Dirty.
    pub const D: u64 = 1 << 7;

    /// Builds a leaf PTE mapping to `pa` with the given permission bits.
    pub fn leaf(pa: PhysAddr, flags: u64) -> Pte {
        Pte((pa.ppn() << 10) | flags | Pte::V | Pte::A | Pte::D)
    }

    /// Builds a non-leaf (pointer) PTE to the next-level table at `pa`.
    pub fn table(pa: PhysAddr) -> Pte {
        Pte((pa.ppn() << 10) | Pte::V)
    }

    /// Valid bit set?
    pub fn valid(self) -> bool {
        self.0 & Pte::V != 0
    }

    /// Readable leaf?
    pub fn readable(self) -> bool {
        self.0 & Pte::R != 0
    }

    /// Writable leaf?
    pub fn writable(self) -> bool {
        self.0 & Pte::W != 0
    }

    /// Executable leaf?
    pub fn executable(self) -> bool {
        self.0 & Pte::X != 0
    }

    /// User-accessible?
    pub fn user(self) -> bool {
        self.0 & Pte::U != 0
    }

    /// A leaf PTE has at least one of R/W/X set.
    pub fn is_leaf(self) -> bool {
        self.0 & (Pte::R | Pte::W | Pte::X) != 0
    }

    /// The physical page number this PTE points at.
    pub fn ppn(self) -> u64 {
        (self.0 >> 10) & ((1 << 44) - 1)
    }

    /// The physical address this PTE points at.
    pub fn pa(self) -> PhysAddr {
        PhysAddr(self.ppn() << 12)
    }

    /// Architectural permission check for a leaf PTE.
    ///
    /// `kind` uses [`crate::pmp::AccessKind`]; `sum` is `mstatus.SUM`.
    pub fn permits(self, kind: crate::pmp::AccessKind, priv_level: PrivLevel, sum: bool) -> bool {
        use crate::pmp::AccessKind;
        if !self.valid() || !self.is_leaf() {
            return false;
        }
        match priv_level {
            PrivLevel::User => {
                if !self.user() {
                    return false;
                }
            }
            PrivLevel::Supervisor => {
                if self.user() && !(sum && kind != AccessKind::Execute) {
                    return false;
                }
            }
            PrivLevel::Machine => {}
        }
        match kind {
            AccessKind::Read => self.readable(),
            AccessKind::Write => self.writable(),
            AccessKind::Execute => self.executable(),
        }
    }
}

/// The physical address of the PTE consulted at `level` for `va`, given the
/// table base for that level.
pub fn pte_addr(table_base: PhysAddr, va: VirtAddr, level: usize) -> PhysAddr {
    PhysAddr(table_base.0 + va.vpn(level) * 8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pmp::AccessKind;

    #[test]
    fn vpn_split() {
        let va = VirtAddr(0x0000_003F_C021_3ABC);
        assert_eq!(va.page_offset(), 0xABC);
        assert_eq!(va.vpn(0), (0x0000_003F_C021_3ABC >> 12) & 0x1FF);
        assert_eq!(va.vpn(1), (0x0000_003F_C021_3ABC >> 21) & 0x1FF);
        assert_eq!(va.vpn(2), (0x0000_003F_C021_3ABC >> 30) & 0x1FF);
    }

    #[test]
    fn canonical_addresses() {
        assert!(VirtAddr(0x0000_0000_8000_0000).is_canonical());
        assert!(VirtAddr(0xFFFF_FFFF_8000_0000).is_canonical());
        assert!(!VirtAddr(0x0001_0000_0000_0000).is_canonical());
    }

    #[test]
    fn leaf_pte_roundtrip() {
        let pa = PhysAddr(0x8123_4000);
        let pte = Pte::leaf(pa, Pte::R | Pte::W | Pte::U);
        assert!(pte.valid());
        assert!(pte.is_leaf());
        assert!(pte.readable() && pte.writable() && !pte.executable());
        assert_eq!(pte.pa(), pa);
    }

    #[test]
    fn table_pte_is_not_leaf() {
        let pte = Pte::table(PhysAddr(0x8000_1000));
        assert!(pte.valid());
        assert!(!pte.is_leaf());
        assert_eq!(pte.pa(), PhysAddr(0x8000_1000));
    }

    #[test]
    fn user_page_protected_from_supervisor_without_sum() {
        let pte = Pte::leaf(PhysAddr(0x8000_0000), Pte::R | Pte::W | Pte::U);
        assert!(pte.permits(AccessKind::Read, PrivLevel::User, false));
        assert!(!pte.permits(AccessKind::Read, PrivLevel::Supervisor, false));
        assert!(pte.permits(AccessKind::Read, PrivLevel::Supervisor, true));
        // SUM never grants execute.
        assert!(!pte.permits(AccessKind::Execute, PrivLevel::Supervisor, true));
    }

    #[test]
    fn supervisor_page_protected_from_user() {
        let pte = Pte::leaf(PhysAddr(0x8000_0000), Pte::R | Pte::W);
        assert!(!pte.permits(AccessKind::Read, PrivLevel::User, false));
        assert!(pte.permits(AccessKind::Read, PrivLevel::Supervisor, false));
    }

    #[test]
    fn pte_addr_indexing() {
        let base = PhysAddr(0x8020_0000);
        let va = VirtAddr(0x8000_0000);
        assert_eq!(pte_addr(base, va, 2).0, 0x8020_0000 + va.vpn(2) * 8);
    }
}
