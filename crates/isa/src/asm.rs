//! A small two-pass assembler with label support.
//!
//! The TEESec test-gadget constructor composes gadgets out of [`crate::Inst`]
//! values and pseudo-instructions; the assembler resolves labels and lowers
//! everything to 32-bit words that get loaded into simulated memory.

use std::collections::HashMap;
use std::fmt;

use crate::csr::CsrAddr;
use crate::inst::{AluOp, BranchCond, CsrOp, CsrSrc, Inst, MemWidth};
use crate::reg::Reg;

/// An assembler item: either a concrete instruction or a label-relative one.
#[derive(Debug, Clone)]
enum Item {
    Inst(Inst),
    /// `jal rd, label`
    JalTo {
        rd: Reg,
        label: String,
    },
    /// `b<cond> rs1, rs2, label`
    BranchTo {
        cond: BranchCond,
        rs1: Reg,
        rs2: Reg,
        label: String,
    },
    /// `la rd, label` — expands to `auipc` + `addi`.
    LoadAddr {
        rd: Reg,
        label: String,
    },
    /// Raw data word.
    Word(u32),
}

/// Errors produced while assembling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssembleError {
    /// A referenced label was never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A branch or jump target is out of encodable range.
    OffsetOutOfRange {
        /// The label that could not be reached.
        label: String,
        /// The required byte offset.
        offset: i64,
    },
}

impl fmt::Display for AssembleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssembleError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AssembleError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AssembleError::OffsetOutOfRange { label, offset } => {
                write!(f, "target `{label}` out of range (offset {offset})")
            }
        }
    }
}

impl std::error::Error for AssembleError {}

/// A two-pass assembler emitting RV64 words at a fixed base address.
///
/// ```
/// use teesec_isa::asm::Assembler;
/// use teesec_isa::reg::Reg;
///
/// let mut asm = Assembler::new(0x8000_0000);
/// asm.li(Reg::T0, 42);
/// asm.label("loop");
/// asm.addi(Reg::T0, Reg::T0, -1);
/// asm.bnez(Reg::T0, "loop");
/// asm.ecall();
/// let words = asm.assemble()?;
/// assert!(words.len() >= 4);
/// # Ok::<(), teesec_isa::asm::AssembleError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Assembler {
    base: u64,
    items: Vec<Item>,
    labels: HashMap<String, usize>,
    errors: Vec<AssembleError>,
}

impl Assembler {
    /// Creates an assembler whose first word lands at `base`.
    pub fn new(base: u64) -> Assembler {
        Assembler {
            base,
            ..Assembler::default()
        }
    }

    /// The base address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The address of the *next* emitted word.
    pub fn cursor(&self) -> u64 {
        self.base + 4 * self.items.len() as u64
    }

    /// Defines `name` at the current cursor.
    pub fn label(&mut self, name: impl Into<String>) -> &mut Self {
        let name = name.into();
        if self.labels.insert(name.clone(), self.items.len()).is_some() {
            self.errors.push(AssembleError::DuplicateLabel(name));
        }
        self
    }

    /// The resolved address of a previously defined label.
    pub fn label_addr(&self, name: &str) -> Option<u64> {
        self.labels.get(name).map(|&i| self.base + 4 * i as u64)
    }

    /// Emits a concrete instruction.
    pub fn inst(&mut self, inst: Inst) -> &mut Self {
        self.items.push(Item::Inst(inst));
        self
    }

    /// Emits a raw data word.
    pub fn word(&mut self, w: u32) -> &mut Self {
        self.items.push(Item::Word(w));
        self
    }

    // ---- direct instructions -------------------------------------------

    /// `addi rd, rs1, imm`
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.inst(Inst::AluImm {
            op: AluOp::Add,
            rd,
            rs1,
            imm,
            word: false,
        })
    }

    /// `andi rd, rs1, imm`
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.inst(Inst::AluImm {
            op: AluOp::And,
            rd,
            rs1,
            imm,
            word: false,
        })
    }

    /// `xori rd, rs1, imm`
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.inst(Inst::AluImm {
            op: AluOp::Xor,
            rd,
            rs1,
            imm,
            word: false,
        })
    }

    /// `slli rd, rs1, shamt`
    pub fn slli(&mut self, rd: Reg, rs1: Reg, shamt: i32) -> &mut Self {
        self.inst(Inst::AluImm {
            op: AluOp::Sll,
            rd,
            rs1,
            imm: shamt,
            word: false,
        })
    }

    /// `srli rd, rs1, shamt`
    pub fn srli(&mut self, rd: Reg, rs1: Reg, shamt: i32) -> &mut Self {
        self.inst(Inst::AluImm {
            op: AluOp::Srl,
            rd,
            rs1,
            imm: shamt,
            word: false,
        })
    }

    /// `add rd, rs1, rs2`
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::AluReg {
            op: AluOp::Add,
            rd,
            rs1,
            rs2,
            word: false,
        })
    }

    /// `sub rd, rs1, rs2`
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::AluReg {
            op: AluOp::Sub,
            rd,
            rs1,
            rs2,
            word: false,
        })
    }

    /// `xor rd, rs1, rs2`
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::AluReg {
            op: AluOp::Xor,
            rd,
            rs1,
            rs2,
            word: false,
        })
    }

    /// `mul rd, rs1, rs2`
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::AluReg {
            op: AluOp::Mul,
            rd,
            rs1,
            rs2,
            word: false,
        })
    }

    /// Load of the given width (signed variants for sub-double widths).
    pub fn load(&mut self, width: MemWidth, rd: Reg, rs1: Reg, offset: i32) -> &mut Self {
        self.inst(Inst::Load {
            width,
            signed: true,
            rd,
            rs1,
            offset,
        })
    }

    /// `ld rd, offset(rs1)`
    pub fn ld(&mut self, rd: Reg, rs1: Reg, offset: i32) -> &mut Self {
        self.load(MemWidth::D, rd, rs1, offset)
    }

    /// `lw rd, offset(rs1)`
    pub fn lw(&mut self, rd: Reg, rs1: Reg, offset: i32) -> &mut Self {
        self.load(MemWidth::W, rd, rs1, offset)
    }

    /// `lbu rd, offset(rs1)`
    pub fn lbu(&mut self, rd: Reg, rs1: Reg, offset: i32) -> &mut Self {
        self.inst(Inst::Load {
            width: MemWidth::B,
            signed: false,
            rd,
            rs1,
            offset,
        })
    }

    /// Store of the given width.
    pub fn store(&mut self, width: MemWidth, rs2: Reg, rs1: Reg, offset: i32) -> &mut Self {
        self.inst(Inst::Store {
            width,
            rs2,
            rs1,
            offset,
        })
    }

    /// `sd rs2, offset(rs1)`
    pub fn sd(&mut self, rs2: Reg, rs1: Reg, offset: i32) -> &mut Self {
        self.store(MemWidth::D, rs2, rs1, offset)
    }

    /// `sw rs2, offset(rs1)`
    pub fn sw(&mut self, rs2: Reg, rs1: Reg, offset: i32) -> &mut Self {
        self.store(MemWidth::W, rs2, rs1, offset)
    }

    /// `sb rs2, offset(rs1)`
    pub fn sb(&mut self, rs2: Reg, rs1: Reg, offset: i32) -> &mut Self {
        self.store(MemWidth::B, rs2, rs1, offset)
    }

    /// `jalr rd, offset(rs1)`
    pub fn jalr(&mut self, rd: Reg, rs1: Reg, offset: i32) -> &mut Self {
        self.inst(Inst::Jalr { rd, rs1, offset })
    }

    /// `ecall`
    pub fn ecall(&mut self) -> &mut Self {
        self.inst(Inst::Ecall)
    }

    /// `mret`
    pub fn mret(&mut self) -> &mut Self {
        self.inst(Inst::Mret)
    }

    /// `sret`
    pub fn sret(&mut self) -> &mut Self {
        self.inst(Inst::Sret)
    }

    /// `fence`
    pub fn fence(&mut self) -> &mut Self {
        self.inst(Inst::Fence)
    }

    /// `sfence.vma`
    pub fn sfence_vma(&mut self) -> &mut Self {
        self.inst(Inst::SfenceVma)
    }

    /// `wfi`
    pub fn wfi(&mut self) -> &mut Self {
        self.inst(Inst::Wfi)
    }

    /// `csrrw rd, csr, rs1`
    pub fn csrrw(&mut self, rd: Reg, csr: CsrAddr, rs1: Reg) -> &mut Self {
        self.inst(Inst::Csr {
            op: CsrOp::Rw,
            rd,
            src: CsrSrc::Reg(rs1),
            csr,
        })
    }

    /// `csrrs rd, csr, rs1`
    pub fn csrrs(&mut self, rd: Reg, csr: CsrAddr, rs1: Reg) -> &mut Self {
        self.inst(Inst::Csr {
            op: CsrOp::Rs,
            rd,
            src: CsrSrc::Reg(rs1),
            csr,
        })
    }

    // ---- pseudo-instructions -------------------------------------------

    /// `nop`
    pub fn nop(&mut self) -> &mut Self {
        self.addi(Reg::ZERO, Reg::ZERO, 0)
    }

    /// `mv rd, rs`
    pub fn mv(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.addi(rd, rs, 0)
    }

    /// `csrr rd, csr` (read)
    pub fn csrr(&mut self, rd: Reg, csr: CsrAddr) -> &mut Self {
        self.csrrs(rd, csr, Reg::ZERO)
    }

    /// `csrw csr, rs` (write, old value discarded)
    pub fn csrw(&mut self, csr: CsrAddr, rs: Reg) -> &mut Self {
        self.csrrw(Reg::ZERO, csr, rs)
    }

    /// `ret`
    pub fn ret(&mut self) -> &mut Self {
        self.jalr(Reg::ZERO, Reg::RA, 0)
    }

    /// Loads an arbitrary 64-bit constant into `rd`.
    ///
    /// Uses the standard recursive `lui`/`addiw`/`slli`/`addi`
    /// materialization and clobbers no other register.
    pub fn li(&mut self, rd: Reg, value: u64) -> &mut Self {
        self.li_rec(rd, value as i64);
        self
    }

    /// Loads a 32-bit constant (sign-extended to 64 bits) into `rd`.
    pub fn li32(&mut self, rd: Reg, value: u32) -> &mut Self {
        self.li_rec(rd, value as i32 as i64);
        self
    }

    fn li_rec(&mut self, rd: Reg, v: i64) {
        if (i32::MIN as i64..=i32::MAX as i64).contains(&v) {
            let hi = (v.wrapping_add(0x800) >> 12) & 0xFFFFF;
            let lo = ((v << 52) >> 52) as i32;
            if hi != 0 {
                self.inst(Inst::Lui {
                    rd,
                    imm20: sign20(hi as i32),
                });
                if lo != 0 {
                    self.inst(Inst::AluImm {
                        op: AluOp::Add,
                        rd,
                        rs1: rd,
                        imm: lo,
                        word: true,
                    });
                }
            } else {
                self.addi(rd, Reg::ZERO, lo);
            }
            return;
        }
        let lo12 = (v << 52) >> 52;
        self.li_rec(rd, v.wrapping_sub(lo12) >> 12);
        self.slli(rd, rd, 12);
        if lo12 != 0 {
            self.addi(rd, rd, lo12 as i32);
        }
    }

    /// `j label`
    pub fn j(&mut self, label: impl Into<String>) -> &mut Self {
        self.items.push(Item::JalTo {
            rd: Reg::ZERO,
            label: label.into(),
        });
        self
    }

    /// `jal label` (links into `ra`).
    pub fn call(&mut self, label: impl Into<String>) -> &mut Self {
        self.items.push(Item::JalTo {
            rd: Reg::RA,
            label: label.into(),
        });
        self
    }

    /// `beq rs1, rs2, label`
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, label: impl Into<String>) -> &mut Self {
        self.branch(BranchCond::Eq, rs1, rs2, label)
    }

    /// `bne rs1, rs2, label`
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, label: impl Into<String>) -> &mut Self {
        self.branch(BranchCond::Ne, rs1, rs2, label)
    }

    /// `bnez rs, label`
    pub fn bnez(&mut self, rs: Reg, label: impl Into<String>) -> &mut Self {
        self.bne(rs, Reg::ZERO, label)
    }

    /// `beqz rs, label`
    pub fn beqz(&mut self, rs: Reg, label: impl Into<String>) -> &mut Self {
        self.beq(rs, Reg::ZERO, label)
    }

    /// `bltu rs1, rs2, label`
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, label: impl Into<String>) -> &mut Self {
        self.branch(BranchCond::Ltu, rs1, rs2, label)
    }

    /// Conditional branch to a label.
    pub fn branch(
        &mut self,
        cond: BranchCond,
        rs1: Reg,
        rs2: Reg,
        label: impl Into<String>,
    ) -> &mut Self {
        self.items.push(Item::BranchTo {
            cond,
            rs1,
            rs2,
            label: label.into(),
        });
        self
    }

    /// `la rd, label` (PC-relative address formation).
    pub fn la(&mut self, rd: Reg, label: impl Into<String>) -> &mut Self {
        self.items.push(Item::LoadAddr {
            rd,
            label: label.into(),
        });
        self.nop() // reserve the second slot of the auipc/addi pair
    }

    /// Number of words that will be emitted.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Resolves labels and produces the final instruction words.
    ///
    /// # Errors
    ///
    /// Returns the first recorded error: duplicate labels, undefined labels,
    /// or out-of-range control-flow offsets.
    pub fn assemble(&self) -> Result<Vec<u32>, AssembleError> {
        if let Some(e) = self.errors.first() {
            return Err(e.clone());
        }
        let resolve = |label: &str| -> Result<u64, AssembleError> {
            self.label_addr(label)
                .ok_or_else(|| AssembleError::UndefinedLabel(label.to_string()))
        };
        let mut out = Vec::with_capacity(self.items.len());
        let mut skip_reserved = false;
        for (i, item) in self.items.iter().enumerate() {
            if skip_reserved {
                // This slot's word was already emitted by the preceding
                // `la` expansion (auipc + addi pair).
                skip_reserved = false;
                continue;
            }
            let pc = self.base + 4 * i as u64;
            match item {
                Item::Inst(inst) => out.push(inst.encode()),
                Item::Word(w) => out.push(*w),
                Item::JalTo { rd, label } => {
                    let target = resolve(label)?;
                    let offset = target as i64 - pc as i64;
                    if !(-(1 << 20)..(1 << 20)).contains(&offset) {
                        return Err(AssembleError::OffsetOutOfRange {
                            label: label.clone(),
                            offset,
                        });
                    }
                    out.push(
                        Inst::Jal {
                            rd: *rd,
                            offset: offset as i32,
                        }
                        .encode(),
                    );
                }
                Item::BranchTo {
                    cond,
                    rs1,
                    rs2,
                    label,
                } => {
                    let target = resolve(label)?;
                    let offset = target as i64 - pc as i64;
                    if !(-4096..4096).contains(&offset) {
                        return Err(AssembleError::OffsetOutOfRange {
                            label: label.clone(),
                            offset,
                        });
                    }
                    out.push(
                        Inst::Branch {
                            cond: *cond,
                            rs1: *rs1,
                            rs2: *rs2,
                            offset: offset as i32,
                        }
                        .encode(),
                    );
                }
                Item::LoadAddr { rd, label } => {
                    let target = resolve(label)?;
                    let offset = target as i64 - pc as i64;
                    let hi = ((offset + 0x800) >> 12) as i32;
                    let lo = (offset & 0xFFF) as i32;
                    let lo = if lo >= 0x800 { lo - 0x1000 } else { lo };
                    out.push(
                        Inst::Auipc {
                            rd: *rd,
                            imm20: sign20(hi),
                        }
                        .encode(),
                    );
                    // Overwrites the nop reserved by `la`.
                    out.push(
                        Inst::AluImm {
                            op: AluOp::Add,
                            rd: *rd,
                            rs1: *rd,
                            imm: lo,
                            word: false,
                        }
                        .encode(),
                    );
                    skip_reserved = true;
                }
            }
        }
        Ok(out)
    }
}

fn sign20(v: i32) -> i32 {
    // Wrap a 20-bit value into the signed range the U-format expects.
    let v = v & 0xFFFFF;
    if v >= 0x80000 {
        v - 0x100000
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;

    /// A tiny reference interpreter over assembled words, used to validate
    /// `li` materialization without the full core model.
    fn run_alu_program(words: &[u32]) -> [u64; 32] {
        let mut regs = [0u64; 32];
        for w in words {
            match Inst::decode(*w).expect("decode") {
                Inst::Lui { rd, imm20 } => {
                    regs[rd.index() as usize] = ((imm20 as i64) << 12) as u64;
                }
                Inst::AluImm {
                    op,
                    rd,
                    rs1,
                    imm,
                    word,
                } => {
                    let v = op.eval(regs[rs1.index() as usize], imm as i64 as u64, word);
                    regs[rd.index() as usize] = v;
                }
                Inst::AluReg {
                    op,
                    rd,
                    rs1,
                    rs2,
                    word,
                } => {
                    let v = op.eval(regs[rs1.index() as usize], regs[rs2.index() as usize], word);
                    regs[rd.index() as usize] = v;
                }
                other => panic!("unexpected instruction in ALU test: {other:?}"),
            }
            regs[0] = 0;
        }
        regs
    }

    fn check_li(value: u64) {
        let mut asm = Assembler::new(0);
        asm.li(Reg::A0, value);
        let words = asm.assemble().expect("assemble");
        let regs = run_alu_program(&words);
        assert_eq!(regs[10], value, "li {value:#x}");
    }

    #[test]
    fn li_materializes_constants() {
        for v in [
            0u64,
            1,
            42,
            0xFFF,
            0x800,
            0x1000,
            0xdead_beef,
            0x8000_0000,
            0xFFFF_FFFF,
            0x1_0000_0000,
            0x8000_0000_0000_0000,
            u64::MAX,
            0x1234_5678_9ABC_DEF0,
            0x0000_0042_4000_0FF8,
        ] {
            check_li(v);
        }
    }

    #[test]
    fn branch_back_and_forward() {
        let mut asm = Assembler::new(0x8000_0000);
        asm.label("top");
        asm.nop();
        asm.bnez(Reg::A0, "bottom");
        asm.j("top");
        asm.label("bottom");
        asm.ret();
        let words = asm.assemble().expect("assemble");
        // bnez is at 0x8000_0004, bottom at 0x8000_000C -> offset +8
        let b = Inst::decode(words[1]).unwrap();
        assert!(matches!(b, Inst::Branch { offset: 8, .. }), "{b:?}");
        // j is at 0x8000_0008, top at 0x8000_0000 -> offset -8
        let j = Inst::decode(words[2]).unwrap();
        assert!(matches!(j, Inst::Jal { offset: -8, .. }), "{j:?}");
    }

    #[test]
    fn undefined_label_is_error() {
        let mut asm = Assembler::new(0);
        asm.j("nowhere");
        assert_eq!(
            asm.assemble(),
            Err(AssembleError::UndefinedLabel("nowhere".into()))
        );
    }

    #[test]
    fn duplicate_label_is_error() {
        let mut asm = Assembler::new(0);
        asm.label("x");
        asm.nop();
        asm.label("x");
        assert_eq!(
            asm.assemble(),
            Err(AssembleError::DuplicateLabel("x".into()))
        );
    }

    #[test]
    fn la_points_at_label() {
        let mut asm = Assembler::new(0x8000_0000);
        asm.la(Reg::A1, "data");
        asm.nop();
        asm.label("data");
        asm.word(0x1234_5678);
        let words = asm.assemble().expect("assemble");
        assert_eq!(words.len(), 4);
        // auipc a1, 0 ; addi a1, a1, 12
        let auipc = Inst::decode(words[0]).unwrap();
        assert!(matches!(auipc, Inst::Auipc { imm20: 0, .. }), "{auipc:?}");
        let addi = Inst::decode(words[1]).unwrap();
        assert!(matches!(addi, Inst::AluImm { imm: 12, .. }), "{addi:?}");
    }

    #[test]
    fn cursor_tracks_emission() {
        let mut asm = Assembler::new(0x1000);
        assert_eq!(asm.cursor(), 0x1000);
        asm.nop().nop();
        assert_eq!(asm.cursor(), 0x1008);
    }

    #[test]
    fn label_addr_resolution() {
        let mut asm = Assembler::new(0x2000);
        asm.nop();
        asm.label("here");
        assert_eq!(asm.label_addr("here"), Some(0x2004));
        assert_eq!(asm.label_addr("missing"), None);
    }
}
