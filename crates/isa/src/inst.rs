//! RV64IM + Zicsr instruction model with a bidirectional encoder/decoder.
//!
//! The TEESec gadget constructor emits [`Inst`] sequences, the assembler
//! lowers them to 32-bit words, and the core model decodes the words back at
//! fetch time — the same round trip the paper performs between its Python
//! test-gadget constructor and the Verilator-simulated RTL.

use serde::{Deserialize, Serialize};

use crate::csr::CsrAddr;
use crate::reg::Reg;

/// Memory access width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemWidth {
    /// One byte.
    B,
    /// Two bytes.
    H,
    /// Four bytes.
    W,
    /// Eight bytes.
    D,
}

impl MemWidth {
    /// Access size in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::B => 1,
            MemWidth::H => 2,
            MemWidth::W => 4,
            MemWidth::D => 8,
        }
    }
}

/// Conditional-branch comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchCond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

impl BranchCond {
    /// Evaluates the branch condition on two register values.
    pub fn taken(self, a: u64, b: u64) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => (a as i64) < (b as i64),
            BranchCond::Ge => (a as i64) >= (b as i64),
            BranchCond::Ltu => a < b,
            BranchCond::Geu => a >= b,
        }
    }

    fn funct3(self) -> u32 {
        match self {
            BranchCond::Eq => 0,
            BranchCond::Ne => 1,
            BranchCond::Lt => 4,
            BranchCond::Ge => 5,
            BranchCond::Ltu => 6,
            BranchCond::Geu => 7,
        }
    }
}

/// Integer ALU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction (register form only).
    Sub,
    /// Logical left shift.
    Sll,
    /// Signed set-less-than.
    Slt,
    /// Unsigned set-less-than.
    Sltu,
    /// Bitwise exclusive or.
    Xor,
    /// Logical right shift.
    Srl,
    /// Arithmetic right shift.
    Sra,
    /// Bitwise or.
    Or,
    /// Bitwise and.
    And,
    /// Multiplication (M extension, register form only).
    Mul,
    /// Signed division (M extension, register form only).
    Div,
    /// Unsigned division (M extension, register form only).
    Divu,
    /// Signed remainder (M extension, register form only).
    Rem,
    /// Unsigned remainder (M extension, register form only).
    Remu,
}

impl AluOp {
    /// Evaluates the operation. `word = true` applies RV64 `*W` semantics
    /// (32-bit operate, sign-extend result).
    pub fn eval(self, a: u64, b: u64, word: bool) -> u64 {
        if word {
            let a32 = a as u32;
            let b32 = b as u32;
            let r = match self {
                AluOp::Add => a32.wrapping_add(b32),
                AluOp::Sub => a32.wrapping_sub(b32),
                AluOp::Sll => a32.wrapping_shl(b32 & 0x1F),
                AluOp::Srl => a32.wrapping_shr(b32 & 0x1F),
                AluOp::Sra => ((a32 as i32).wrapping_shr(b32 & 0x1F)) as u32,
                AluOp::Mul => a32.wrapping_mul(b32),
                AluOp::Div => {
                    let (a, b) = (a32 as i32, b32 as i32);
                    if b == 0 {
                        u32::MAX
                    } else {
                        a.wrapping_div(b) as u32
                    }
                }
                AluOp::Divu => a32.checked_div(b32).unwrap_or(u32::MAX),
                AluOp::Rem => {
                    let (a, b) = (a32 as i32, b32 as i32);
                    if b == 0 {
                        a as u32
                    } else {
                        a.wrapping_rem(b) as u32
                    }
                }
                AluOp::Remu => {
                    if b32 == 0 {
                        a32
                    } else {
                        a32 % b32
                    }
                }
                AluOp::Slt => ((a32 as i32) < (b32 as i32)) as u32,
                AluOp::Sltu => (a32 < b32) as u32,
                AluOp::Xor => a32 ^ b32,
                AluOp::Or => a32 | b32,
                AluOp::And => a32 & b32,
            };
            r as i32 as i64 as u64
        } else {
            match self {
                AluOp::Add => a.wrapping_add(b),
                AluOp::Sub => a.wrapping_sub(b),
                AluOp::Sll => a.wrapping_shl((b & 0x3F) as u32),
                AluOp::Slt => ((a as i64) < (b as i64)) as u64,
                AluOp::Sltu => (a < b) as u64,
                AluOp::Xor => a ^ b,
                AluOp::Srl => a.wrapping_shr((b & 0x3F) as u32),
                AluOp::Sra => ((a as i64).wrapping_shr((b & 0x3F) as u32)) as u64,
                AluOp::Or => a | b,
                AluOp::And => a & b,
                AluOp::Mul => a.wrapping_mul(b),
                AluOp::Div => {
                    let (sa, sb) = (a as i64, b as i64);
                    if sb == 0 {
                        u64::MAX
                    } else {
                        sa.wrapping_div(sb) as u64
                    }
                }
                AluOp::Divu => a.checked_div(b).unwrap_or(u64::MAX),
                AluOp::Rem => {
                    let (sa, sb) = (a as i64, b as i64);
                    if sb == 0 {
                        a
                    } else {
                        sa.wrapping_rem(sb) as u64
                    }
                }
                AluOp::Remu => {
                    if b == 0 {
                        a
                    } else {
                        a % b
                    }
                }
            }
        }
    }
}

/// CSR instruction flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CsrOp {
    /// Atomic read/write.
    Rw,
    /// Atomic read and set bits.
    Rs,
    /// Atomic read and clear bits.
    Rc,
}

/// The source operand of a CSR instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CsrSrc {
    /// A register source (`csrrw`/`csrrs`/`csrrc`).
    Reg(Reg),
    /// A 5-bit immediate source (`csrrwi`/`csrrsi`/`csrrci`).
    Imm(u8),
}

/// A decoded RV64IM + Zicsr instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Inst {
    /// Load upper immediate (`rd = imm20 << 12`, sign-extended).
    Lui {
        /// Destination.
        rd: Reg,
        /// 20-bit immediate (placed at bits 31:12).
        imm20: i32,
    },
    /// Add upper immediate to PC.
    Auipc {
        /// Destination.
        rd: Reg,
        /// 20-bit immediate.
        imm20: i32,
    },
    /// Jump and link (PC-relative).
    Jal {
        /// Link destination.
        rd: Reg,
        /// Signed byte offset (±1 MiB, even).
        offset: i32,
    },
    /// Jump and link register.
    Jalr {
        /// Link destination.
        rd: Reg,
        /// Base register.
        rs1: Reg,
        /// Signed 12-bit byte offset.
        offset: i32,
    },
    /// Conditional branch.
    Branch {
        /// Comparison.
        cond: BranchCond,
        /// Left operand.
        rs1: Reg,
        /// Right operand.
        rs2: Reg,
        /// Signed byte offset (±4 KiB, even).
        offset: i32,
    },
    /// Memory load.
    Load {
        /// Access width.
        width: MemWidth,
        /// Sign-extend the loaded value.
        signed: bool,
        /// Destination.
        rd: Reg,
        /// Base address register.
        rs1: Reg,
        /// Signed 12-bit byte offset.
        offset: i32,
    },
    /// Memory store.
    Store {
        /// Access width.
        width: MemWidth,
        /// Data register.
        rs2: Reg,
        /// Base address register.
        rs1: Reg,
        /// Signed 12-bit byte offset.
        offset: i32,
    },
    /// ALU with immediate (`addi`, `xori`, shifts, and `*W` forms).
    AluImm {
        /// Operation (must not be `Sub` or `Mul`).
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
        /// Signed 12-bit immediate (6-bit shamt for shifts).
        imm: i32,
        /// RV64 `*W` (32-bit) form.
        word: bool,
    },
    /// ALU register-register (and `*W` forms).
    AluReg {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Left source.
        rs1: Reg,
        /// Right source.
        rs2: Reg,
        /// RV64 `*W` (32-bit) form.
        word: bool,
    },
    /// CSR read-modify-write.
    Csr {
        /// Flavor.
        op: CsrOp,
        /// Destination for the old CSR value.
        rd: Reg,
        /// Source operand.
        src: CsrSrc,
        /// Target CSR.
        csr: CsrAddr,
    },
    /// Environment call (SBI entry from S-mode, syscall from U-mode).
    Ecall,
    /// Breakpoint.
    Ebreak,
    /// Return from machine trap.
    Mret,
    /// Return from supervisor trap.
    Sret,
    /// Wait for interrupt.
    Wfi,
    /// Memory fence.
    Fence,
    /// Instruction-stream fence.
    FenceI,
    /// Supervisor fence of the virtual-memory system (flushes TLBs).
    SfenceVma,
}

/// Error produced when decoding an illegal or unsupported instruction word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The word that failed to decode.
    pub word: u32,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "illegal instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

const OPC_LUI: u32 = 0b0110111;
const OPC_AUIPC: u32 = 0b0010111;
const OPC_JAL: u32 = 0b1101111;
const OPC_JALR: u32 = 0b1100111;
const OPC_BRANCH: u32 = 0b1100011;
const OPC_LOAD: u32 = 0b0000011;
const OPC_STORE: u32 = 0b0100011;
const OPC_OP_IMM: u32 = 0b0010011;
const OPC_OP_IMM_32: u32 = 0b0011011;
const OPC_OP: u32 = 0b0110011;
const OPC_OP_32: u32 = 0b0111011;
const OPC_SYSTEM: u32 = 0b1110011;
const OPC_MISC_MEM: u32 = 0b0001111;

fn rd_bits(r: Reg) -> u32 {
    (r.index() as u32) << 7
}
fn rs1_bits(r: Reg) -> u32 {
    (r.index() as u32) << 15
}
fn rs2_bits(r: Reg) -> u32 {
    (r.index() as u32) << 20
}

fn enc_i(opcode: u32, funct3: u32, rd: Reg, rs1: Reg, imm: i32) -> u32 {
    debug_assert!((-2048..=2047).contains(&imm), "I-imm {imm} out of range");
    ((imm as u32) << 20) | rs1_bits(rs1) | (funct3 << 12) | rd_bits(rd) | opcode
}

fn enc_s(opcode: u32, funct3: u32, rs1: Reg, rs2: Reg, imm: i32) -> u32 {
    debug_assert!((-2048..=2047).contains(&imm), "S-imm {imm} out of range");
    let imm = imm as u32;
    ((imm >> 5 & 0x7F) << 25)
        | rs2_bits(rs2)
        | rs1_bits(rs1)
        | (funct3 << 12)
        | ((imm & 0x1F) << 7)
        | opcode
}

fn enc_b(opcode: u32, funct3: u32, rs1: Reg, rs2: Reg, imm: i32) -> u32 {
    debug_assert!(
        (-4096..=4095).contains(&imm) && imm % 2 == 0,
        "B-imm {imm} out of range"
    );
    let imm = imm as u32;
    ((imm >> 12 & 1) << 31)
        | ((imm >> 5 & 0x3F) << 25)
        | rs2_bits(rs2)
        | rs1_bits(rs1)
        | (funct3 << 12)
        | ((imm >> 1 & 0xF) << 8)
        | ((imm >> 11 & 1) << 7)
        | opcode
}

fn enc_u(opcode: u32, rd: Reg, imm20: i32) -> u32 {
    debug_assert!(
        (-(1 << 19)..(1 << 19)).contains(&imm20),
        "U-imm {imm20} out of range"
    );
    (((imm20 as u32) & 0xFFFFF) << 12) | rd_bits(rd) | opcode
}

fn enc_j(opcode: u32, rd: Reg, imm: i32) -> u32 {
    debug_assert!(
        (-(1 << 20)..(1 << 20)).contains(&imm) && imm % 2 == 0,
        "J-imm {imm} out of range"
    );
    let imm = imm as u32;
    ((imm >> 20 & 1) << 31)
        | ((imm >> 1 & 0x3FF) << 21)
        | ((imm >> 11 & 1) << 20)
        | ((imm >> 12 & 0xFF) << 12)
        | rd_bits(rd)
        | opcode
}

fn enc_r(opcode: u32, funct3: u32, funct7: u32, rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
    (funct7 << 25) | rs2_bits(rs2) | rs1_bits(rs1) | (funct3 << 12) | rd_bits(rd) | opcode
}

fn dec_i_imm(w: u32) -> i32 {
    (w as i32) >> 20
}
fn dec_s_imm(w: u32) -> i32 {
    (((w as i32) >> 25) << 5) | ((w >> 7 & 0x1F) as i32)
}
fn dec_b_imm(w: u32) -> i32 {
    let sign = (w as i32) >> 31; // bit 12
    (sign << 12)
        | (((w >> 7) & 1) as i32) << 11
        | (((w >> 25) & 0x3F) as i32) << 5
        | (((w >> 8) & 0xF) as i32) << 1
}
fn dec_j_imm(w: u32) -> i32 {
    let sign = (w as i32) >> 31; // bit 20
    (sign << 20)
        | (((w >> 12) & 0xFF) as i32) << 12
        | (((w >> 20) & 1) as i32) << 11
        | (((w >> 21) & 0x3FF) as i32) << 1
}
fn dec_rd(w: u32) -> Reg {
    Reg::new(((w >> 7) & 0x1F) as u8)
}
fn dec_rs1(w: u32) -> Reg {
    Reg::new(((w >> 15) & 0x1F) as u8)
}
fn dec_rs2(w: u32) -> Reg {
    Reg::new(((w >> 20) & 0x1F) as u8)
}

impl Inst {
    /// Encodes to a 32-bit instruction word.
    ///
    /// # Panics
    ///
    /// Debug builds panic when an immediate is out of range for its format;
    /// the assembler validates ranges before calling this.
    pub fn encode(self) -> u32 {
        match self {
            Inst::Lui { rd, imm20 } => enc_u(OPC_LUI, rd, imm20),
            Inst::Auipc { rd, imm20 } => enc_u(OPC_AUIPC, rd, imm20),
            Inst::Jal { rd, offset } => enc_j(OPC_JAL, rd, offset),
            Inst::Jalr { rd, rs1, offset } => enc_i(OPC_JALR, 0, rd, rs1, offset),
            Inst::Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => enc_b(OPC_BRANCH, cond.funct3(), rs1, rs2, offset),
            Inst::Load {
                width,
                signed,
                rd,
                rs1,
                offset,
            } => {
                let funct3 = match (width, signed) {
                    (MemWidth::B, true) => 0,
                    (MemWidth::H, true) => 1,
                    (MemWidth::W, true) => 2,
                    (MemWidth::D, _) => 3,
                    (MemWidth::B, false) => 4,
                    (MemWidth::H, false) => 5,
                    (MemWidth::W, false) => 6,
                };
                enc_i(OPC_LOAD, funct3, rd, rs1, offset)
            }
            Inst::Store {
                width,
                rs2,
                rs1,
                offset,
            } => {
                let funct3 = match width {
                    MemWidth::B => 0,
                    MemWidth::H => 1,
                    MemWidth::W => 2,
                    MemWidth::D => 3,
                };
                enc_s(OPC_STORE, funct3, rs1, rs2, offset)
            }
            Inst::AluImm {
                op,
                rd,
                rs1,
                imm,
                word,
            } => {
                let opcode = if word { OPC_OP_IMM_32 } else { OPC_OP_IMM };
                match op {
                    AluOp::Add => enc_i(opcode, 0, rd, rs1, imm),
                    AluOp::Slt => enc_i(opcode, 2, rd, rs1, imm),
                    AluOp::Sltu => enc_i(opcode, 3, rd, rs1, imm),
                    AluOp::Xor => enc_i(opcode, 4, rd, rs1, imm),
                    AluOp::Or => enc_i(opcode, 6, rd, rs1, imm),
                    AluOp::And => enc_i(opcode, 7, rd, rs1, imm),
                    AluOp::Sll => enc_i(opcode, 1, rd, rs1, imm & 0x3F),
                    AluOp::Srl => enc_i(opcode, 5, rd, rs1, imm & 0x3F),
                    AluOp::Sra => enc_i(opcode, 5, rd, rs1, (imm & 0x3F) | 0x400),
                    AluOp::Sub
                    | AluOp::Mul
                    | AluOp::Div
                    | AluOp::Divu
                    | AluOp::Rem
                    | AluOp::Remu => panic!("{op:?} has no immediate form"),
                }
            }
            Inst::AluReg {
                op,
                rd,
                rs1,
                rs2,
                word,
            } => {
                let opcode = if word { OPC_OP_32 } else { OPC_OP };
                let (funct3, funct7) = match op {
                    AluOp::Add => (0, 0x00),
                    AluOp::Sub => (0, 0x20),
                    AluOp::Sll => (1, 0x00),
                    AluOp::Slt => (2, 0x00),
                    AluOp::Sltu => (3, 0x00),
                    AluOp::Xor => (4, 0x00),
                    AluOp::Srl => (5, 0x00),
                    AluOp::Sra => (5, 0x20),
                    AluOp::Or => (6, 0x00),
                    AluOp::And => (7, 0x00),
                    AluOp::Mul => (0, 0x01),
                    AluOp::Div => (4, 0x01),
                    AluOp::Divu => (5, 0x01),
                    AluOp::Rem => (6, 0x01),
                    AluOp::Remu => (7, 0x01),
                };
                enc_r(opcode, funct3, funct7, rd, rs1, rs2)
            }
            Inst::Csr { op, rd, src, csr } => {
                let (funct3, src_bits) = match (op, src) {
                    (CsrOp::Rw, CsrSrc::Reg(r)) => (1, r.index() as u32),
                    (CsrOp::Rs, CsrSrc::Reg(r)) => (2, r.index() as u32),
                    (CsrOp::Rc, CsrSrc::Reg(r)) => (3, r.index() as u32),
                    (CsrOp::Rw, CsrSrc::Imm(i)) => (5, (i & 0x1F) as u32),
                    (CsrOp::Rs, CsrSrc::Imm(i)) => (6, (i & 0x1F) as u32),
                    (CsrOp::Rc, CsrSrc::Imm(i)) => (7, (i & 0x1F) as u32),
                };
                ((csr as u32) << 20) | (src_bits << 15) | (funct3 << 12) | rd_bits(rd) | OPC_SYSTEM
            }
            Inst::Ecall => 0x0000_0073,
            Inst::Ebreak => 0x0010_0073,
            Inst::Sret => 0x1020_0073,
            Inst::Mret => 0x3020_0073,
            Inst::Wfi => 0x1050_0073,
            Inst::Fence => 0x0000_000F | (0xFF << 20),
            Inst::FenceI => 0x0000_100F,
            Inst::SfenceVma => (0x09 << 25) | OPC_SYSTEM,
        }
    }

    /// Decodes a 32-bit instruction word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for words outside the modeled subset, which
    /// the core raises as an illegal-instruction exception.
    pub fn decode(w: u32) -> Result<Inst, DecodeError> {
        let opcode = w & 0x7F;
        let funct3 = (w >> 12) & 0x7;
        let funct7 = (w >> 25) & 0x7F;
        let err = Err(DecodeError { word: w });
        let inst = match opcode {
            OPC_LUI => Inst::Lui {
                rd: dec_rd(w),
                imm20: (w as i32) >> 12,
            },
            OPC_AUIPC => Inst::Auipc {
                rd: dec_rd(w),
                imm20: (w as i32) >> 12,
            },
            OPC_JAL => Inst::Jal {
                rd: dec_rd(w),
                offset: dec_j_imm(w),
            },
            OPC_JALR if funct3 == 0 => Inst::Jalr {
                rd: dec_rd(w),
                rs1: dec_rs1(w),
                offset: dec_i_imm(w),
            },
            OPC_BRANCH => {
                let cond = match funct3 {
                    0 => BranchCond::Eq,
                    1 => BranchCond::Ne,
                    4 => BranchCond::Lt,
                    5 => BranchCond::Ge,
                    6 => BranchCond::Ltu,
                    7 => BranchCond::Geu,
                    _ => return err,
                };
                Inst::Branch {
                    cond,
                    rs1: dec_rs1(w),
                    rs2: dec_rs2(w),
                    offset: dec_b_imm(w),
                }
            }
            OPC_LOAD => {
                let (width, signed) = match funct3 {
                    0 => (MemWidth::B, true),
                    1 => (MemWidth::H, true),
                    2 => (MemWidth::W, true),
                    3 => (MemWidth::D, true),
                    4 => (MemWidth::B, false),
                    5 => (MemWidth::H, false),
                    6 => (MemWidth::W, false),
                    _ => return err,
                };
                Inst::Load {
                    width,
                    signed,
                    rd: dec_rd(w),
                    rs1: dec_rs1(w),
                    offset: dec_i_imm(w),
                }
            }
            OPC_STORE => {
                let width = match funct3 {
                    0 => MemWidth::B,
                    1 => MemWidth::H,
                    2 => MemWidth::W,
                    3 => MemWidth::D,
                    _ => return err,
                };
                Inst::Store {
                    width,
                    rs2: dec_rs2(w),
                    rs1: dec_rs1(w),
                    offset: dec_s_imm(w),
                }
            }
            OPC_OP_IMM | OPC_OP_IMM_32 => {
                let word = opcode == OPC_OP_IMM_32;
                let imm = dec_i_imm(w);
                let (op, imm) = match funct3 {
                    0 => (AluOp::Add, imm),
                    2 => (AluOp::Slt, imm),
                    3 => (AluOp::Sltu, imm),
                    4 => (AluOp::Xor, imm),
                    6 => (AluOp::Or, imm),
                    7 => (AluOp::And, imm),
                    1 => (AluOp::Sll, imm & 0x3F),
                    5 if (w >> 30) & 1 == 1 => (AluOp::Sra, imm & 0x3F),
                    5 => (AluOp::Srl, imm & 0x3F),
                    _ => return err,
                };
                Inst::AluImm {
                    op,
                    rd: dec_rd(w),
                    rs1: dec_rs1(w),
                    imm,
                    word,
                }
            }
            OPC_OP | OPC_OP_32 => {
                let word = opcode == OPC_OP_32;
                let op = match (funct3, funct7) {
                    (0, 0x00) => AluOp::Add,
                    (0, 0x20) => AluOp::Sub,
                    (0, 0x01) => AluOp::Mul,
                    (4, 0x01) => AluOp::Div,
                    (5, 0x01) => AluOp::Divu,
                    (6, 0x01) => AluOp::Rem,
                    (7, 0x01) => AluOp::Remu,
                    (1, 0x00) => AluOp::Sll,
                    (2, 0x00) => AluOp::Slt,
                    (3, 0x00) => AluOp::Sltu,
                    (4, 0x00) => AluOp::Xor,
                    (5, 0x00) => AluOp::Srl,
                    (5, 0x20) => AluOp::Sra,
                    (6, 0x00) => AluOp::Or,
                    (7, 0x00) => AluOp::And,
                    _ => return err,
                };
                Inst::AluReg {
                    op,
                    rd: dec_rd(w),
                    rs1: dec_rs1(w),
                    rs2: dec_rs2(w),
                    word,
                }
            }
            OPC_MISC_MEM => match funct3 {
                0 => Inst::Fence,
                1 => Inst::FenceI,
                _ => return err,
            },
            OPC_SYSTEM => match funct3 {
                0 => match w {
                    0x0000_0073 => Inst::Ecall,
                    0x0010_0073 => Inst::Ebreak,
                    0x1020_0073 => Inst::Sret,
                    0x3020_0073 => Inst::Mret,
                    0x1050_0073 => Inst::Wfi,
                    _ if funct7 == 0x09 => Inst::SfenceVma,
                    _ => return err,
                },
                f3 @ 1..=3 => {
                    let op = [CsrOp::Rw, CsrOp::Rs, CsrOp::Rc][(f3 - 1) as usize];
                    Inst::Csr {
                        op,
                        rd: dec_rd(w),
                        src: CsrSrc::Reg(dec_rs1(w)),
                        csr: (w >> 20) as CsrAddr,
                    }
                }
                f3 @ 5..=7 => {
                    let op = [CsrOp::Rw, CsrOp::Rs, CsrOp::Rc][(f3 - 5) as usize];
                    Inst::Csr {
                        op,
                        rd: dec_rd(w),
                        src: CsrSrc::Imm(((w >> 15) & 0x1F) as u8),
                        csr: (w >> 20) as CsrAddr,
                    }
                }
                _ => return err,
            },
            _ => return err,
        };
        Ok(inst)
    }

    /// `true` for loads and stores.
    pub fn is_memory(self) -> bool {
        matches!(self, Inst::Load { .. } | Inst::Store { .. })
    }

    /// `true` for control-flow instructions.
    pub fn is_control_flow(self) -> bool {
        matches!(
            self,
            Inst::Jal { .. } | Inst::Jalr { .. } | Inst::Branch { .. }
        )
    }

    /// The destination register, if the instruction writes one.
    pub fn dest(self) -> Option<Reg> {
        let rd = match self {
            Inst::Lui { rd, .. }
            | Inst::Auipc { rd, .. }
            | Inst::Jal { rd, .. }
            | Inst::Jalr { rd, .. }
            | Inst::Load { rd, .. }
            | Inst::AluImm { rd, .. }
            | Inst::AluReg { rd, .. }
            | Inst::Csr { rd, .. } => rd,
            _ => return None,
        };
        (!rd.is_zero()).then_some(rd)
    }

    /// Source registers read by the instruction (zero register excluded).
    pub fn sources(self) -> Vec<Reg> {
        let mut v = Vec::with_capacity(2);
        match self {
            Inst::Jalr { rs1, .. } | Inst::Load { rs1, .. } | Inst::AluImm { rs1, .. } => {
                v.push(rs1)
            }
            Inst::Branch { rs1, rs2, .. }
            | Inst::Store { rs1, rs2, .. }
            | Inst::AluReg { rs1, rs2, .. } => {
                v.push(rs1);
                v.push(rs2);
            }
            Inst::Csr {
                src: CsrSrc::Reg(r),
                ..
            } => v.push(r),
            _ => {}
        }
        v.retain(|r| !r.is_zero());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(inst: Inst) {
        let w = inst.encode();
        let back = Inst::decode(w).expect("decode");
        assert_eq!(back, inst, "word {w:#010x}");
    }

    #[test]
    fn roundtrip_u_and_j_types() {
        roundtrip(Inst::Lui {
            rd: Reg::A0,
            imm20: -0x12345,
        }); // negative imm
        roundtrip(Inst::Lui {
            rd: Reg::A0,
            imm20: 0x7FFFF,
        });
        roundtrip(Inst::Auipc {
            rd: Reg::T1,
            imm20: -1,
        });
        roundtrip(Inst::Jal {
            rd: Reg::RA,
            offset: 2048,
        });
        roundtrip(Inst::Jal {
            rd: Reg::ZERO,
            offset: -4096,
        });
    }

    #[test]
    fn roundtrip_loads_stores() {
        for width in [MemWidth::B, MemWidth::H, MemWidth::W, MemWidth::D] {
            roundtrip(Inst::Load {
                width,
                signed: true,
                rd: Reg::A5,
                rs1: Reg::A4,
                offset: -8,
            });
            roundtrip(Inst::Store {
                width,
                rs2: Reg::A5,
                rs1: Reg::SP,
                offset: 2040,
            });
        }
        for width in [MemWidth::B, MemWidth::H, MemWidth::W] {
            roundtrip(Inst::Load {
                width,
                signed: false,
                rd: Reg::T0,
                rs1: Reg::T1,
                offset: 7,
            });
        }
    }

    #[test]
    fn roundtrip_branches() {
        for cond in [
            BranchCond::Eq,
            BranchCond::Ne,
            BranchCond::Lt,
            BranchCond::Ge,
            BranchCond::Ltu,
            BranchCond::Geu,
        ] {
            roundtrip(Inst::Branch {
                cond,
                rs1: Reg::A0,
                rs2: Reg::A1,
                offset: -2048,
            });
            roundtrip(Inst::Branch {
                cond,
                rs1: Reg::S0,
                rs2: Reg::S1,
                offset: 4094,
            });
        }
    }

    #[test]
    fn roundtrip_alu() {
        for op in [
            AluOp::Add,
            AluOp::Slt,
            AluOp::Sltu,
            AluOp::Xor,
            AluOp::Or,
            AluOp::And,
            AluOp::Sll,
            AluOp::Srl,
            AluOp::Sra,
        ] {
            roundtrip(Inst::AluImm {
                op,
                rd: Reg::A0,
                rs1: Reg::A1,
                imm: 33,
                word: false,
            });
        }
        for op in [
            AluOp::Add,
            AluOp::Sub,
            AluOp::Mul,
            AluOp::Div,
            AluOp::Divu,
            AluOp::Rem,
            AluOp::Remu,
            AluOp::Sll,
            AluOp::Slt,
            AluOp::Sltu,
            AluOp::Xor,
            AluOp::Srl,
            AluOp::Sra,
            AluOp::Or,
            AluOp::And,
        ] {
            roundtrip(Inst::AluReg {
                op,
                rd: Reg::T2,
                rs1: Reg::T3,
                rs2: Reg::T4,
                word: false,
            });
            roundtrip(Inst::AluReg {
                op,
                rd: Reg::T2,
                rs1: Reg::T3,
                rs2: Reg::T4,
                word: true,
            });
        }
    }

    #[test]
    fn roundtrip_csr_and_system() {
        roundtrip(Inst::Csr {
            op: CsrOp::Rw,
            rd: Reg::A0,
            src: CsrSrc::Reg(Reg::A1),
            csr: crate::csr::SATP,
        });
        roundtrip(Inst::Csr {
            op: CsrOp::Rs,
            rd: Reg::A0,
            src: CsrSrc::Imm(31),
            csr: crate::csr::MSTATUS,
        });
        roundtrip(Inst::Csr {
            op: CsrOp::Rc,
            rd: Reg::ZERO,
            src: CsrSrc::Imm(1),
            csr: crate::csr::MIE,
        });
        for i in [
            Inst::Ecall,
            Inst::Ebreak,
            Inst::Mret,
            Inst::Sret,
            Inst::Wfi,
            Inst::FenceI,
        ] {
            roundtrip(i);
        }
    }

    #[test]
    fn fence_and_sfence_decode() {
        assert_eq!(Inst::decode(Inst::Fence.encode()), Ok(Inst::Fence));
        assert_eq!(Inst::decode(Inst::SfenceVma.encode()), Ok(Inst::SfenceVma));
    }

    #[test]
    fn illegal_word_errors() {
        assert!(Inst::decode(0x0000_0000).is_err());
        assert!(Inst::decode(0xFFFF_FFFF).is_err());
        // Atomic extension (not modeled).
        assert!(Inst::decode(0x100522AF).is_err());
    }

    #[test]
    fn alu_eval_basic() {
        assert_eq!(AluOp::Add.eval(2, 3, false), 5);
        assert_eq!(AluOp::Sub.eval(2, 3, false), u64::MAX);
        assert_eq!(AluOp::Sra.eval(0x8000_0000_0000_0000, 63, false), u64::MAX);
        assert_eq!(AluOp::Srl.eval(0x8000_0000_0000_0000, 63, false), 1);
        assert_eq!(AluOp::Slt.eval(u64::MAX, 0, false), 1); // -1 < 0 signed
        assert_eq!(AluOp::Sltu.eval(u64::MAX, 0, false), 0);
    }

    #[test]
    fn division_semantics_match_spec() {
        // Division by zero: quotient all-ones, remainder = dividend.
        assert_eq!(AluOp::Div.eval(42, 0, false), u64::MAX);
        assert_eq!(AluOp::Divu.eval(42, 0, false), u64::MAX);
        assert_eq!(AluOp::Rem.eval(42, 0, false), 42);
        assert_eq!(AluOp::Remu.eval(42, 0, false), 42);
        // Signed overflow: INT_MIN / -1 = INT_MIN, remainder 0.
        let int_min = i64::MIN as u64;
        assert_eq!(AluOp::Div.eval(int_min, u64::MAX, false), int_min);
        assert_eq!(AluOp::Rem.eval(int_min, u64::MAX, false), 0);
        // Ordinary signed/unsigned cases.
        assert_eq!(AluOp::Div.eval((-7i64) as u64, 2, false), (-3i64) as u64);
        assert_eq!(AluOp::Rem.eval((-7i64) as u64, 2, false), (-1i64) as u64);
        assert_eq!(AluOp::Divu.eval(7, 2, false), 3);
        assert_eq!(AluOp::Remu.eval(7, 2, false), 1);
        // Word forms sign-extend and use 32-bit overflow rules.
        assert_eq!(
            AluOp::Div.eval(0x8000_0000, u64::MAX, true),
            0xFFFF_FFFF_8000_0000
        );
        assert_eq!(AluOp::Divu.eval(10, 0, true), u64::MAX); // zext32(-1) sext -> all ones
    }

    #[test]
    fn alu_eval_word_sign_extends() {
        // 0x7FFF_FFFF + 1 wraps to 0x8000_0000 and sign-extends.
        assert_eq!(AluOp::Add.eval(0x7FFF_FFFF, 1, true), 0xFFFF_FFFF_8000_0000);
        assert_eq!(AluOp::Sll.eval(1, 31, true), 0xFFFF_FFFF_8000_0000);
    }

    #[test]
    fn dest_and_sources() {
        let ld = Inst::Load {
            width: MemWidth::D,
            signed: true,
            rd: Reg::A5,
            rs1: Reg::A4,
            offset: 0,
        };
        assert_eq!(ld.dest(), Some(Reg::A5));
        assert_eq!(ld.sources(), vec![Reg::A4]);
        let st = Inst::Store {
            width: MemWidth::D,
            rs2: Reg::A5,
            rs1: Reg::A4,
            offset: 0,
        };
        assert_eq!(st.dest(), None);
        assert_eq!(st.sources(), vec![Reg::A4, Reg::A5]);
        // x0 destination is no destination.
        let nop = Inst::AluImm {
            op: AluOp::Add,
            rd: Reg::ZERO,
            rs1: Reg::ZERO,
            imm: 0,
            word: false,
        };
        assert_eq!(nop.dest(), None);
        assert!(nop.sources().is_empty());
    }

    #[test]
    fn branch_cond_eval() {
        assert!(BranchCond::Eq.taken(5, 5));
        assert!(BranchCond::Ne.taken(5, 6));
        assert!(BranchCond::Lt.taken(u64::MAX, 0));
        assert!(!BranchCond::Ltu.taken(u64::MAX, 0));
        assert!(BranchCond::Geu.taken(u64::MAX, 0));
        assert!(BranchCond::Ge.taken(0, u64::MAX));
    }
}
