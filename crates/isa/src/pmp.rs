//! RISC-V Physical Memory Protection (PMP) semantics.
//!
//! Keystone builds its entire isolation story on PMP: the security monitor
//! carves physical memory into domains (SM-private, per-enclave, untrusted)
//! by programming `pmpcfg`/`pmpaddr` CSRs at every context switch. The
//! matching and permission rules implemented here follow the privileged
//! specification: lowest-numbered matching entry wins; M-mode accesses are
//! allowed unless the matching entry is locked; S/U accesses that match no
//! entry are allowed only when no entry is implemented (here: denied if any
//! entry is active, matching Keystone's deny-by-default final entry setup is
//! modeled explicitly by the TEE crate instead).

use serde::{Deserialize, Serialize};

use crate::priv_level::PrivLevel;

/// Address-matching mode of a PMP entry (the `A` field of `pmpcfg`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PmpAddrMatch {
    /// Entry disabled.
    #[default]
    Off,
    /// Top-of-range: matches `[pmpaddr[i-1], pmpaddr[i])`.
    Tor,
    /// Naturally aligned four-byte region.
    Na4,
    /// Naturally aligned power-of-two region (≥ 8 bytes).
    Napot,
}

impl PmpAddrMatch {
    /// Decodes the two-bit `A` field.
    pub fn from_bits(bits: u8) -> PmpAddrMatch {
        match bits & 0b11 {
            0 => PmpAddrMatch::Off,
            1 => PmpAddrMatch::Tor,
            2 => PmpAddrMatch::Na4,
            _ => PmpAddrMatch::Napot,
        }
    }

    /// Encodes back to the two-bit `A` field.
    pub fn to_bits(self) -> u8 {
        match self {
            PmpAddrMatch::Off => 0,
            PmpAddrMatch::Tor => 1,
            PmpAddrMatch::Na4 => 2,
            PmpAddrMatch::Napot => 3,
        }
    }
}

/// The kind of access being permission-checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Data read (loads, page-table walks).
    Read,
    /// Data write (stores).
    Write,
    /// Instruction fetch.
    Execute,
}

/// One decoded PMP entry configuration byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PmpCfg {
    /// Read permission.
    pub r: bool,
    /// Write permission.
    pub w: bool,
    /// Execute permission.
    pub x: bool,
    /// Address-matching mode.
    pub a: PmpAddrMatch,
    /// Lock bit: entry also applies to M-mode and is write-protected.
    pub l: bool,
}

impl PmpCfg {
    /// Decodes a `pmpcfg` byte.
    pub fn from_byte(b: u8) -> PmpCfg {
        PmpCfg {
            r: b & 0x01 != 0,
            w: b & 0x02 != 0,
            x: b & 0x04 != 0,
            a: PmpAddrMatch::from_bits((b >> 3) & 0b11),
            l: b & 0x80 != 0,
        }
    }

    /// Encodes back to a `pmpcfg` byte.
    pub fn to_byte(self) -> u8 {
        (self.r as u8)
            | (self.w as u8) << 1
            | (self.x as u8) << 2
            | self.a.to_bits() << 3
            | (self.l as u8) << 7
    }

    /// Convenience: a TOR entry with the given permissions.
    pub fn tor(r: bool, w: bool, x: bool) -> PmpCfg {
        PmpCfg {
            r,
            w,
            x,
            a: PmpAddrMatch::Tor,
            l: false,
        }
    }

    /// Convenience: a NAPOT entry with the given permissions.
    pub fn napot(r: bool, w: bool, x: bool) -> PmpCfg {
        PmpCfg {
            r,
            w,
            x,
            a: PmpAddrMatch::Napot,
            l: false,
        }
    }

    /// Whether this entry grants the given access kind.
    pub fn permits(self, kind: AccessKind) -> bool {
        match kind {
            AccessKind::Read => self.r,
            AccessKind::Write => self.w,
            AccessKind::Execute => self.x,
        }
    }
}

/// A full PMP unit: `N` config bytes plus `N` address registers.
///
/// `addr[i]` holds the *encoded* `pmpaddr` value (physical address >> 2,
/// with NAPOT size encoding).
///
/// ```
/// use teesec_isa::pmp::{AccessKind, PmpCfg, PmpSet};
/// use teesec_isa::priv_level::PrivLevel;
///
/// let mut pmp = PmpSet::new(8);
/// pmp.program_napot(0, 0x8040_0000, 0x4000, PmpCfg::napot(false, false, false));
/// pmp.program_napot(1, 0, 1 << 48, PmpCfg::napot(true, true, true));
/// assert!(!pmp.allows(0x8040_0000, 8, AccessKind::Read, PrivLevel::Supervisor));
/// assert!(pmp.allows(0x8000_0000, 8, AccessKind::Read, PrivLevel::Supervisor));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PmpSet {
    cfg: Vec<PmpCfg>,
    addr: Vec<u64>,
}

/// Outcome of a PMP permission check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PmpDecision {
    /// Whether the access is allowed.
    pub allowed: bool,
    /// Index of the matching entry, if any.
    pub matched_entry: Option<usize>,
}

impl PmpSet {
    /// Creates a PMP unit with `n` entries, all `Off`.
    pub fn new(n: usize) -> PmpSet {
        PmpSet {
            cfg: vec![PmpCfg::default(); n],
            addr: vec![0; n],
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.cfg.len()
    }

    /// `true` if the unit has no entries.
    pub fn is_empty(&self) -> bool {
        self.cfg.is_empty()
    }

    /// Reads the configuration of entry `i`.
    pub fn cfg(&self, i: usize) -> PmpCfg {
        self.cfg[i]
    }

    /// Reads the raw `pmpaddr` register of entry `i`.
    pub fn addr_raw(&self, i: usize) -> u64 {
        self.addr[i]
    }

    /// Writes the configuration of entry `i`. Locked entries are immutable.
    pub fn set_cfg(&mut self, i: usize, cfg: PmpCfg) {
        if !self.cfg[i].l {
            self.cfg[i] = cfg;
        }
    }

    /// Writes the raw `pmpaddr` register of entry `i` (ignored when locked,
    /// or when the *next* entry is a locked TOR entry, per the spec).
    pub fn set_addr_raw(&mut self, i: usize, v: u64) {
        let next_locks = self
            .cfg
            .get(i + 1)
            .is_some_and(|c| c.l && c.a == PmpAddrMatch::Tor);
        if !self.cfg[i].l && !next_locks {
            self.addr[i] = v;
        }
    }

    /// Programs entry `i` as a NAPOT region `[base, base+size)`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not a power of two ≥ 8 or `base` is not
    /// `size`-aligned.
    pub fn program_napot(&mut self, i: usize, base: u64, size: u64, cfg: PmpCfg) {
        assert!(
            size.is_power_of_two() && size >= 8,
            "NAPOT size must be a power of two >= 8"
        );
        assert_eq!(base % size, 0, "NAPOT base must be size-aligned");
        let mut c = cfg;
        c.a = PmpAddrMatch::Napot;
        self.cfg[i] = c;
        self.addr[i] = (base >> 2) | ((size >> 3) - 1);
    }

    /// Programs entries `i-1`, `i` as a TOR region `[base, top)`.
    ///
    /// Entry `i-1` is used as the base marker only if it is currently `Off`.
    ///
    /// # Panics
    ///
    /// Panics if `i == 0`.
    pub fn program_tor(&mut self, i: usize, base: u64, top: u64, cfg: PmpCfg) {
        assert!(i > 0, "TOR entry 0 has an implicit base of 0");
        self.addr[i - 1] = base >> 2;
        let mut c = cfg;
        c.a = PmpAddrMatch::Tor;
        self.cfg[i] = c;
        self.addr[i] = top >> 2;
    }

    /// Disables entry `i`.
    pub fn disable(&mut self, i: usize) {
        if !self.cfg[i].l {
            self.cfg[i].a = PmpAddrMatch::Off;
        }
    }

    /// The byte range `[lo, hi)` matched by entry `i`, if it is active.
    pub fn entry_range(&self, i: usize) -> Option<(u64, u64)> {
        match self.cfg[i].a {
            PmpAddrMatch::Off => None,
            PmpAddrMatch::Tor => {
                let lo = if i == 0 { 0 } else { self.addr[i - 1] << 2 };
                let hi = self.addr[i] << 2;
                Some((lo, hi))
            }
            PmpAddrMatch::Na4 => {
                let lo = self.addr[i] << 2;
                Some((lo, lo + 4))
            }
            PmpAddrMatch::Napot => {
                let a = self.addr[i];
                let trailing = (!a).trailing_zeros().min(54);
                let size = 8u64 << trailing;
                let lo = (a & !((1u64 << (trailing + 1)) - 1)) << 2;
                Some((lo, lo + size))
            }
        }
    }

    /// Permission-checks a byte-range access `[addr, addr+len)` at privilege
    /// `priv_level`.
    ///
    /// Per the spec the lowest-numbered entry matching *any* byte of the
    /// access determines the outcome; an access that straddles an entry
    /// boundary fails unless fully contained (modeled conservatively: the
    /// access must be fully inside the matched range to use its permissions).
    pub fn check(
        &self,
        addr: u64,
        len: u64,
        kind: AccessKind,
        priv_level: PrivLevel,
    ) -> PmpDecision {
        let end = addr.saturating_add(len.max(1));
        for i in 0..self.cfg.len() {
            let Some((lo, hi)) = self.entry_range(i) else {
                continue;
            };
            let overlaps = addr < hi && end > lo;
            if !overlaps {
                continue;
            }
            let contained = addr >= lo && end <= hi;
            let cfg = self.cfg[i];
            if priv_level == PrivLevel::Machine && !cfg.l {
                // Unlocked entries do not constrain M-mode.
                return PmpDecision {
                    allowed: true,
                    matched_entry: Some(i),
                };
            }
            let allowed = contained && cfg.permits(kind);
            return PmpDecision {
                allowed,
                matched_entry: Some(i),
            };
        }
        // No match: M succeeds; S/U succeed only if no entry is active
        // (hardware with zero implemented entries). Keystone always installs
        // a default entry, so in practice S/U fall through rarely.
        let any_active = (0..self.cfg.len()).any(|i| self.cfg[i].a != PmpAddrMatch::Off);
        PmpDecision {
            allowed: priv_level == PrivLevel::Machine || !any_active,
            matched_entry: None,
        }
    }

    /// Convenience wrapper returning only the allow/deny bit.
    pub fn allows(&self, addr: u64, len: u64, kind: AccessKind, priv_level: PrivLevel) -> bool {
        self.check(addr, len, kind, priv_level).allowed
    }
}

impl Default for PmpSet {
    fn default() -> Self {
        PmpSet::new(crate::csr::PMP_ENTRY_COUNT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn napot_set(base: u64, size: u64, cfg: PmpCfg) -> PmpSet {
        let mut p = PmpSet::new(8);
        p.program_napot(0, base, size, cfg);
        p
    }

    #[test]
    fn cfg_byte_roundtrip() {
        for b in 0u16..=255 {
            let b = b as u8;
            let cfg = PmpCfg::from_byte(b);
            // Bits 5..6 are reserved-zero; mask them out of the comparison.
            assert_eq!(cfg.to_byte(), b & 0b1001_1111);
        }
    }

    #[test]
    fn napot_range_decoding() {
        let p = napot_set(0x8000_0000, 0x1000, PmpCfg::napot(true, true, false));
        assert_eq!(p.entry_range(0), Some((0x8000_0000, 0x8000_1000)));
    }

    #[test]
    fn napot_denies_outside_permissions() {
        let p = napot_set(0x8000_0000, 0x1000, PmpCfg::napot(true, false, false));
        assert!(p.allows(0x8000_0100, 8, AccessKind::Read, PrivLevel::Supervisor));
        assert!(!p.allows(0x8000_0100, 8, AccessKind::Write, PrivLevel::Supervisor));
        assert!(!p.allows(0x8000_0100, 4, AccessKind::Execute, PrivLevel::User));
    }

    #[test]
    fn machine_mode_ignores_unlocked_entries() {
        let p = napot_set(0x8000_0000, 0x1000, PmpCfg::napot(false, false, false));
        assert!(p.allows(0x8000_0000, 8, AccessKind::Write, PrivLevel::Machine));
        assert!(!p.allows(0x8000_0000, 8, AccessKind::Write, PrivLevel::Supervisor));
    }

    #[test]
    fn locked_entry_constrains_machine_mode() {
        let mut p = PmpSet::new(8);
        let mut cfg = PmpCfg::napot(true, false, false);
        cfg.l = true;
        p.program_napot(0, 0x8000_0000, 0x1000, cfg);
        assert!(!p.allows(0x8000_0000, 8, AccessKind::Write, PrivLevel::Machine));
        assert!(p.allows(0x8000_0000, 8, AccessKind::Read, PrivLevel::Machine));
    }

    #[test]
    fn lowest_numbered_entry_wins() {
        let mut p = PmpSet::new(8);
        p.program_napot(0, 0x8000_0000, 0x1000, PmpCfg::napot(false, false, false));
        p.program_napot(1, 0x8000_0000, 0x10000, PmpCfg::napot(true, true, true));
        assert!(!p.allows(0x8000_0000, 8, AccessKind::Read, PrivLevel::Supervisor));
        // Outside entry 0's page, entry 1 applies.
        assert!(p.allows(0x8000_2000, 8, AccessKind::Read, PrivLevel::Supervisor));
    }

    #[test]
    fn tor_range() {
        let mut p = PmpSet::new(8);
        p.program_tor(1, 0x8000_0000, 0x8000_4000, PmpCfg::tor(true, false, false));
        assert_eq!(p.entry_range(1), Some((0x8000_0000, 0x8000_4000)));
        assert!(p.allows(0x8000_3FF8, 8, AccessKind::Read, PrivLevel::User));
        assert!(!p.allows(0x8000_4000, 8, AccessKind::Read, PrivLevel::User));
    }

    #[test]
    fn straddling_access_denied() {
        let p = napot_set(0x8000_0000, 0x1000, PmpCfg::napot(true, true, true));
        // Access starts inside the region but crosses its top boundary.
        assert!(!p.allows(0x8000_0FFC, 8, AccessKind::Read, PrivLevel::Supervisor));
    }

    #[test]
    fn no_match_denies_s_mode_when_entries_active() {
        let p = napot_set(0x8000_0000, 0x1000, PmpCfg::napot(true, true, true));
        assert!(!p.allows(0x9000_0000, 8, AccessKind::Read, PrivLevel::Supervisor));
        assert!(p.allows(0x9000_0000, 8, AccessKind::Read, PrivLevel::Machine));
    }

    #[test]
    fn no_entries_allows_everything() {
        let p = PmpSet::new(8);
        assert!(p.allows(0x1234, 8, AccessKind::Write, PrivLevel::User));
    }

    #[test]
    fn locked_cfg_is_immutable() {
        let mut p = PmpSet::new(8);
        let mut cfg = PmpCfg::napot(true, true, true);
        cfg.l = true;
        p.program_napot(0, 0x8000_0000, 0x1000, cfg);
        p.set_cfg(0, PmpCfg::default());
        assert!(p.cfg(0).l);
        assert!(p.cfg(0).r);
    }
}
