//! RISC-V RV64 ISA substrate for the TEESec pre-silicon verification framework.
//!
//! This crate models the *architectural* layer that both the microarchitectural
//! core model (`teesec-uarch`) and the TEE model (`teesec-tee`) build on:
//!
//! * [`inst`] — an RV64IM + Zicsr instruction model with a bidirectional
//!   encoder/decoder,
//! * [`asm`] — a small assembler with label support, used by the TEESec test
//!   gadget constructor to emit test programs,
//! * [`reg`] — integer register names,
//! * [`csr`] — the control-and-status-register address map (PMP, SATP,
//!   hardware performance counters, trap CSRs),
//! * [`pmp`] — RISC-V Physical Memory Protection semantics (TOR / NA4 /
//!   NAPOT matching and permission evaluation), the primitive Keystone uses
//!   to build isolation domains,
//! * [`vm`] — the sv39 virtual-memory format (VA/PA split, PTE fields) that
//!   the hardware page-table walker in the core model traverses,
//! * [`priv_level`] — the M/S/U privilege hierarchy.
//!
//! # Example
//!
//! ```
//! use teesec_isa::asm::Assembler;
//! use teesec_isa::reg::Reg;
//!
//! let mut asm = Assembler::new(0x8000_0000);
//! asm.li(Reg::A0, 0xdead_beef);
//! asm.label("spin");
//! asm.j("spin");
//! let words = asm.assemble()?;
//! assert!(!words.is_empty());
//! # Ok::<(), teesec_isa::asm::AssembleError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod csr;
pub mod inst;
pub mod pmp;
pub mod priv_level;
pub mod reg;
pub mod vm;

pub use inst::Inst;
pub use priv_level::PrivLevel;
pub use reg::Reg;
