//! RISC-V privilege levels.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The three RISC-V privilege levels relevant to Keystone-style TEEs.
///
/// Machine mode hosts the security monitor, supervisor mode the untrusted OS
/// (and the enclave runtime), user mode application code.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum PrivLevel {
    /// U-mode (encoding 0).
    User = 0,
    /// S-mode (encoding 1).
    Supervisor = 1,
    /// M-mode (encoding 3). The default reset privilege.
    #[default]
    Machine = 3,
}

impl PrivLevel {
    /// The two-bit encoding used in `mstatus.MPP` and friends.
    pub fn encoding(self) -> u64 {
        self as u64
    }

    /// Decodes a two-bit privilege encoding.
    ///
    /// Returns `None` for the reserved encoding `2`.
    pub fn from_encoding(bits: u64) -> Option<PrivLevel> {
        match bits & 0b11 {
            0 => Some(PrivLevel::User),
            1 => Some(PrivLevel::Supervisor),
            3 => Some(PrivLevel::Machine),
            _ => None,
        }
    }

    /// `true` iff `self` is at least as privileged as `other`.
    pub fn dominates(self, other: PrivLevel) -> bool {
        self.encoding() >= other.encoding()
    }
}

impl fmt::Display for PrivLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PrivLevel::User => "U",
            PrivLevel::Supervisor => "S",
            PrivLevel::Machine => "M",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_round_trips() {
        for p in [PrivLevel::User, PrivLevel::Supervisor, PrivLevel::Machine] {
            assert_eq!(PrivLevel::from_encoding(p.encoding()), Some(p));
        }
    }

    #[test]
    fn reserved_encoding_rejected() {
        assert_eq!(PrivLevel::from_encoding(2), None);
    }

    #[test]
    fn dominance_is_total_order() {
        assert!(PrivLevel::Machine.dominates(PrivLevel::Supervisor));
        assert!(PrivLevel::Machine.dominates(PrivLevel::User));
        assert!(PrivLevel::Supervisor.dominates(PrivLevel::User));
        assert!(!PrivLevel::User.dominates(PrivLevel::Supervisor));
        assert!(PrivLevel::User.dominates(PrivLevel::User));
    }
}
