//! Integer register file names.

use std::fmt;

use serde::{Deserialize, Serialize};

/// One of the 32 RV64 integer registers.
///
/// The inner index is guaranteed to be `< 32`; construct values through the
/// named constants or [`Reg::new`].
///
/// ```
/// use teesec_isa::reg::Reg;
/// assert_eq!(Reg::A0.index(), 10);
/// assert_eq!(format!("{}", Reg::SP), "sp");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(u8);

impl Reg {
    /// Hard-wired zero.
    pub const ZERO: Reg = Reg(0);
    /// Return address.
    pub const RA: Reg = Reg(1);
    /// Stack pointer.
    pub const SP: Reg = Reg(2);
    /// Global pointer.
    pub const GP: Reg = Reg(3);
    /// Thread pointer.
    pub const TP: Reg = Reg(4);
    /// Temporary 0.
    pub const T0: Reg = Reg(5);
    /// Temporary 1.
    pub const T1: Reg = Reg(6);
    /// Temporary 2.
    pub const T2: Reg = Reg(7);
    /// Saved register 0 / frame pointer.
    pub const S0: Reg = Reg(8);
    /// Saved register 1.
    pub const S1: Reg = Reg(9);
    /// Argument/return 0.
    pub const A0: Reg = Reg(10);
    /// Argument/return 1.
    pub const A1: Reg = Reg(11);
    /// Argument 2.
    pub const A2: Reg = Reg(12);
    /// Argument 3.
    pub const A3: Reg = Reg(13);
    /// Argument 4.
    pub const A4: Reg = Reg(14);
    /// Argument 5.
    pub const A5: Reg = Reg(15);
    /// Argument 6.
    pub const A6: Reg = Reg(16);
    /// Argument 7.
    pub const A7: Reg = Reg(17);
    /// Saved register 2.
    pub const S2: Reg = Reg(18);
    /// Saved register 3.
    pub const S3: Reg = Reg(19);
    /// Saved register 4.
    pub const S4: Reg = Reg(20);
    /// Saved register 5.
    pub const S5: Reg = Reg(21);
    /// Saved register 6.
    pub const S6: Reg = Reg(22);
    /// Saved register 7.
    pub const S7: Reg = Reg(23);
    /// Saved register 8.
    pub const S8: Reg = Reg(24);
    /// Saved register 9.
    pub const S9: Reg = Reg(25);
    /// Saved register 10.
    pub const S10: Reg = Reg(26);
    /// Saved register 11.
    pub const S11: Reg = Reg(27);
    /// Temporary 3.
    pub const T3: Reg = Reg(28);
    /// Temporary 4.
    pub const T4: Reg = Reg(29);
    /// Temporary 5.
    pub const T5: Reg = Reg(30);
    /// Temporary 6.
    pub const T6: Reg = Reg(31);

    /// Creates a register from its architectural index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn new(index: u8) -> Reg {
        assert!(index < 32, "register index {index} out of range");
        Reg(index)
    }

    /// Returns the architectural index (0..32).
    pub fn index(self) -> u8 {
        self.0
    }

    /// Returns `true` for the hard-wired zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterates over all 32 registers, `x0..=x31`.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..32).map(Reg)
    }

    /// The ABI mnemonic for this register (`"a0"`, `"sp"`, ...).
    pub fn abi_name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
            "t3", "t4", "t5", "t6",
        ];
        NAMES[self.0 as usize]
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

impl Default for Reg {
    fn default() -> Self {
        Reg::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_match_abi() {
        assert_eq!(Reg::ZERO.index(), 0);
        assert_eq!(Reg::RA.index(), 1);
        assert_eq!(Reg::A7.index(), 17);
        assert_eq!(Reg::T6.index(), 31);
    }

    #[test]
    fn all_yields_32_unique() {
        let regs: Vec<Reg> = Reg::all().collect();
        assert_eq!(regs.len(), 32);
        for (i, r) in regs.iter().enumerate() {
            assert_eq!(r.index() as usize, i);
        }
    }

    #[test]
    fn zero_is_zero() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::A0.is_zero());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range() {
        let _ = Reg::new(32);
    }

    #[test]
    fn display_uses_abi_names() {
        assert_eq!(Reg::S0.to_string(), "s0");
        assert_eq!(Reg::ZERO.to_string(), "zero");
        assert_eq!(Reg::T3.to_string(), "t3");
    }
}
