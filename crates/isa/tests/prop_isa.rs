//! Property-based tests for the ISA layer: encoder/decoder round trips,
//! decoder totality, PMP matching laws, and `li` materialization.

use proptest::prelude::*;

use teesec_isa::asm::Assembler;
use teesec_isa::inst::{AluOp, BranchCond, CsrOp, CsrSrc, Inst, MemWidth};
use teesec_isa::pmp::{AccessKind, PmpCfg, PmpSet};
use teesec_isa::priv_level::PrivLevel;
use teesec_isa::reg::Reg;

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

fn any_width() -> impl Strategy<Value = MemWidth> {
    prop_oneof![
        Just(MemWidth::B),
        Just(MemWidth::H),
        Just(MemWidth::W),
        Just(MemWidth::D)
    ]
}

fn any_cond() -> impl Strategy<Value = BranchCond> {
    prop_oneof![
        Just(BranchCond::Eq),
        Just(BranchCond::Ne),
        Just(BranchCond::Lt),
        Just(BranchCond::Ge),
        Just(BranchCond::Ltu),
        Just(BranchCond::Geu)
    ]
}

fn any_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
        Just(AluOp::Mul),
        Just(AluOp::Div),
        Just(AluOp::Divu),
        Just(AluOp::Rem),
        Just(AluOp::Remu)
    ]
}

fn any_imm_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And)
    ]
}

fn any_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (any_reg(), -(1i32 << 19)..(1 << 19)).prop_map(|(rd, imm20)| Inst::Lui { rd, imm20 }),
        (any_reg(), -(1i32 << 19)..(1 << 19)).prop_map(|(rd, imm20)| Inst::Auipc { rd, imm20 }),
        (any_reg(), (-(1i32 << 19)..(1 << 19)).prop_map(|o| o * 2))
            .prop_map(|(rd, offset)| Inst::Jal { rd, offset }),
        (any_reg(), any_reg(), -2048i32..2048).prop_map(|(rd, rs1, offset)| Inst::Jalr {
            rd,
            rs1,
            offset
        }),
        (
            any_cond(),
            any_reg(),
            any_reg(),
            (-2048i32..2048).prop_map(|o| o * 2)
        )
            .prop_map(|(cond, rs1, rs2, offset)| Inst::Branch {
                cond,
                rs1,
                rs2,
                offset
            }),
        (
            any_width(),
            any::<bool>(),
            any_reg(),
            any_reg(),
            -2048i32..2048
        )
            .prop_map(|(width, signed, rd, rs1, offset)| {
                // `ld` has no unsigned variant.
                let signed = signed || width == MemWidth::D;
                Inst::Load {
                    width,
                    signed,
                    rd,
                    rs1,
                    offset,
                }
            }),
        (any_width(), any_reg(), any_reg(), -2048i32..2048).prop_map(
            |(width, rs2, rs1, offset)| Inst::Store {
                width,
                rs2,
                rs1,
                offset
            }
        ),
        (
            any_imm_op(),
            any_reg(),
            any_reg(),
            -2048i32..2048,
            any::<bool>()
        )
            .prop_map(|(op, rd, rs1, imm, word)| {
                let imm = if matches!(op, AluOp::Sll | AluOp::Srl | AluOp::Sra) {
                    imm & 0x3F
                } else {
                    imm
                };
                Inst::AluImm {
                    op,
                    rd,
                    rs1,
                    imm,
                    word,
                }
            }),
        (any_alu_op(), any_reg(), any_reg(), any_reg(), any::<bool>()).prop_map(
            |(op, rd, rs1, rs2, word)| Inst::AluReg {
                op,
                rd,
                rs1,
                rs2,
                word
            }
        ),
        (
            prop_oneof![Just(CsrOp::Rw), Just(CsrOp::Rs), Just(CsrOp::Rc)],
            any_reg(),
            prop_oneof![
                any_reg().prop_map(CsrSrc::Reg),
                (0u8..32).prop_map(CsrSrc::Imm)
            ],
            0u16..4096
        )
            .prop_map(|(op, rd, src, csr)| Inst::Csr { op, rd, src, csr }),
        Just(Inst::Ecall),
        Just(Inst::Ebreak),
        Just(Inst::Mret),
        Just(Inst::Sret),
        Just(Inst::Wfi),
        Just(Inst::FenceI),
        Just(Inst::SfenceVma),
    ]
}

proptest! {
    /// Every constructible instruction survives encode → decode.
    #[test]
    fn encode_decode_roundtrip(inst in any_inst()) {
        let word = inst.encode();
        let back = Inst::decode(word);
        prop_assert_eq!(back, Ok(inst));
    }

    /// The decoder is total: it never panics, and anything it accepts
    /// re-encodes to the same word (canonical encodings only).
    #[test]
    fn decode_never_panics_and_reencodes(word in any::<u32>()) {
        if let Ok(inst) = Inst::decode(word) {
            // Skip FENCE, whose ignored hint bits are not canonicalized.
            if !matches!(inst, Inst::Fence) {
                let re = inst.encode();
                let again = Inst::decode(re);
                prop_assert_eq!(again, Ok(inst));
            }
        }
    }

    /// `dest`/`sources` never report the zero register.
    #[test]
    fn dest_sources_exclude_x0(inst in any_inst()) {
        if let Some(d) = inst.dest() {
            prop_assert!(!d.is_zero());
        }
        for s in inst.sources() {
            prop_assert!(!s.is_zero());
        }
    }

    /// `li` materializes any 64-bit constant exactly (checked with the
    /// ALU-evaluation semantics the core uses).
    #[test]
    fn li_materializes_any_constant(value in any::<u64>()) {
        let mut asm = Assembler::new(0);
        asm.li(Reg::A0, value);
        let words = asm.assemble().unwrap();
        let mut regs = [0u64; 32];
        for w in words {
            match Inst::decode(w).unwrap() {
                Inst::Lui { rd, imm20 } => {
                    regs[rd.index() as usize] = ((imm20 as i64) << 12) as u64;
                }
                Inst::AluImm { op, rd, rs1, imm, word } => {
                    regs[rd.index() as usize] =
                        op.eval(regs[rs1.index() as usize], imm as i64 as u64, word);
                }
                other => prop_assert!(false, "unexpected li expansion: {other:?}"),
            }
            regs[0] = 0;
        }
        prop_assert_eq!(regs[10], value);
    }

    /// Word-form ALU results are always proper sign extensions.
    #[test]
    fn word_ops_sign_extend(op in any_alu_op(), a in any::<u64>(), b in any::<u64>()) {
        let r = op.eval(a, b, true);
        prop_assert_eq!(r, r as i32 as i64 as u64, "{:?}", op);
    }
}

proptest! {
    /// NAPOT programming and range decoding agree, and containment implies
    /// permission behaviour.
    #[test]
    fn pmp_napot_range_roundtrip(
        base_page in 0u64..0x10000,
        size_log in 3u32..20,
        r in any::<bool>(),
        w in any::<bool>(),
    ) {
        let size = 1u64 << size_log;
        let base = base_page * size; // size-aligned by construction
        let mut p = PmpSet::new(4);
        p.program_napot(0, base, size, PmpCfg::napot(r, w, false));
        prop_assert_eq!(p.entry_range(0), Some((base, base + size)));
        // Any aligned 8-byte access inside follows the permission bits.
        let addr = base + (size / 2) / 8 * 8;
        prop_assert_eq!(p.allows(addr, 8, AccessKind::Read, PrivLevel::Supervisor), r);
        prop_assert_eq!(p.allows(addr, 8, AccessKind::Write, PrivLevel::Supervisor), w);
        // M-mode ignores unlocked entries.
        prop_assert!(p.allows(addr, 8, AccessKind::Write, PrivLevel::Machine));
    }

    /// The lowest-numbered matching entry always decides.
    #[test]
    fn pmp_lowest_entry_wins(deny_first in any::<bool>()) {
        let mut p = PmpSet::new(4);
        let (c0, c1) = if deny_first {
            (PmpCfg::napot(false, false, false), PmpCfg::napot(true, true, true))
        } else {
            (PmpCfg::napot(true, true, true), PmpCfg::napot(false, false, false))
        };
        p.program_napot(0, 0x8000_0000, 0x1000, c0);
        p.program_napot(1, 0x8000_0000, 0x10000, c1);
        prop_assert_eq!(
            p.allows(0x8000_0008, 8, AccessKind::Read, PrivLevel::User),
            !deny_first
        );
    }

    /// Config bytes round-trip through the packed representation.
    #[test]
    fn pmp_cfg_byte_roundtrip(b in any::<u8>()) {
        let cfg = PmpCfg::from_byte(b);
        prop_assert_eq!(cfg.to_byte(), b & 0b1001_1111);
    }
}
