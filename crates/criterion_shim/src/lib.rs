//! A small, offline benchmark harness exposing the `criterion` API subset
//! the workspace's benches use: `Criterion`, `benchmark_group`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Timing model: each benchmark runs a short warm-up, then `sample_size`
//! timed batches, and reports the median per-iteration wall time to stdout.
//! When invoked by `cargo test` (any `--test`-ish argument present), every
//! benchmark executes exactly one iteration so test runs stay fast while
//! still exercising the bench code paths.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark entry point; owns run configuration.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 10,
            test_mode,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        let test_mode = self.test_mode;
        run_benchmark(&name.to_string(), sample_size, test_mode, None, f);
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Records the work per iteration for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_benchmark(
            &full,
            self.sample_size,
            self.criterion.test_mode,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Benchmarks `f` with no input.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(
            &full,
            self.sample_size,
            self.criterion.test_mode,
            self.throughput,
            f,
        );
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to the benchmark closure; times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, keeping its return value alive via `black_box`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(
    name: &str,
    sample_size: usize,
    test_mode: bool,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    if test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("bench {name}: ok (test mode)");
        return;
    }

    // Warm-up: find an iteration count that runs for a measurable time.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(10) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }

    let mut per_iter: Vec<f64> = (0..sample_size)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = per_iter[per_iter.len() / 2];

    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 / median;
            if per_sec >= 1e6 {
                format!("  {:.2} Melem/s", per_sec / 1e6)
            } else {
                format!("  {per_sec:.1} elem/s")
            }
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:.2} MiB/s", n as f64 / median / (1 << 20) as f64)
        }
        None => String::new(),
    };
    println!("bench {name}: {}{rate}", format_time(median));
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
