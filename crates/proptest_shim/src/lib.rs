//! A compact, offline property-testing harness exposing the `proptest` API
//! subset this workspace's test suites use: the `proptest!` macro,
//! `prop_assert*`, `prop_oneof!`, `Just`, `any::<T>()`, ranges as
//! strategies, tuple composition, `.prop_map`, `prop::sample::select`, and
//! `prop::collection::{vec, hash_map}`.
//!
//! Unlike the real proptest there is no shrinking: a failing case reports
//! its case index and the generator seed, which (being derived only from
//! the test name) reproduces the exact failing input on rerun. Case count
//! defaults to 64 and follows the `PROPTEST_CASES` environment variable.

#![forbid(unsafe_code)]

/// Strategy combinators and primitive strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// A generator of values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (for `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Object-safe strategy, used behind `Box`.
    pub trait DynStrategy<T> {
        /// Draws one value.
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn DynStrategy<T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate_dyn(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The `.prop_map` combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options`; panics if empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }
}

/// `any::<T>()` over the primitive types the suites draw.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value uniformly over the domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_via_standard {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }

    impl_arbitrary_via_standard!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// `prop::sample` — choosing among explicit values.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Uniform choice from a fixed list.
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    /// A strategy drawing uniformly from `items`; panics if empty.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select() needs at least one item");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.gen_range(0..self.items.len())].clone()
        }
    }
}

/// `prop::collection` — container strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::collections::HashMap;
    use std::hash::Hash;
    use std::ops::Range;

    /// Vectors of strategy-generated elements.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A strategy for vectors with `size.start <= len < size.end`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "vec() size range is empty");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Hash maps of strategy-generated pairs.
    pub struct HashMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// A strategy for hash maps targeting `size.start <= len < size.end`
    /// (duplicate keys are re-drawn a bounded number of times).
    pub fn hash_map<K, V>(key: K, value: V, size: Range<usize>) -> HashMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Hash + Eq,
    {
        assert!(!size.is_empty(), "hash_map() size range is empty");
        HashMapStrategy { key, value, size }
    }

    impl<K, V> Strategy for HashMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Hash + Eq,
    {
        type Value = HashMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.gen_range(self.size.clone());
            let mut map = HashMap::with_capacity(target);
            let mut attempts = 0usize;
            while map.len() < target && attempts < target * 20 + 20 {
                map.insert(self.key.generate(rng), self.value.generate(rng));
                attempts += 1;
            }
            map
        }
    }
}

/// The run loop behind `proptest!`.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::fmt;

    /// The RNG driving all strategies.
    pub type TestRng = StdRng;

    /// A failed property within a test case (produced by `prop_assert*`).
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Cases per property: `PROPTEST_CASES` or 64.
    pub fn case_count() -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// A deterministic RNG derived only from the test's name, so reruns
    /// replay the identical case sequence.
    pub fn rng_for(test_name: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` module alias of the real proptest prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Declares deterministic property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` item becomes a `#[test]`
/// that draws `case_count()` inputs and runs the body, which may use the
/// `prop_assert*` macros.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __strategies = ($($strat,)+);
                let __cases = $crate::test_runner::case_count();
                let mut __rng = $crate::test_runner::rng_for(stringify!($name));
                for __case in 0..__cases {
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__e) = __outcome {
                        panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            __case + 1,
                            __cases,
                            __e
                        );
                    }
                }
            }
        )*
    };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($option)),+
        ])
    };
}

/// `assert!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` flavour of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "prop_assert_eq failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "prop_assert_eq failed: `{:?}` != `{:?}`: {}",
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}

/// `assert_ne!` flavour of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "prop_assert_ne failed: both sides are `{:?}`",
            __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "prop_assert_ne failed: both sides are `{:?}`: {}",
            __l,
            format!($($fmt)+)
        );
    }};
}
