//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the in-repo serde
//! facade, implemented directly on `proc_macro` (no syn/quote — the build
//! environment is fully offline).
//!
//! The derive supports exactly the shapes this workspace uses: named-field
//! structs, tuple (including newtype) structs, unit structs, and enums with
//! unit, tuple, and struct variants. Field-level `#[serde(skip)]` omits a
//! field on serialize and fills it from `Default` on deserialize. Generic
//! types are not supported.
//!
//! Representation (chosen for round-trip fidelity, not serde compatibility):
//! named structs become objects; newtype structs are transparent; n-tuple
//! structs become arrays; unit variants become strings; payload variants are
//! externally tagged (`{"Variant": payload}`).

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

/// One struct or enum-variant field.
struct Field {
    /// Identifier for named fields, decimal index for tuple fields.
    name: String,
    /// `#[serde(skip)]` present.
    skip: bool,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum Body {
    UnitStruct,
    TupleStruct(Vec<Field>),
    NamedStruct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    body: Body,
}

/// Derives `serde::Serialize` (the facade's single-method trait).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde_derive: generated Serialize must parse")
}

/// Derives `serde::Deserialize` (the facade's single-method trait).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde_derive: generated Deserialize must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Consumes leading attributes; returns whether any was `#[serde(skip)]`.
fn eat_attrs(toks: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    while matches!(toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        let Some(TokenTree::Group(g)) = toks.get(*i) else {
            panic!("serde_derive: `#` not followed by an attribute group")
        };
        if g.delimiter() == Delimiter::Bracket {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if let Some(TokenTree::Ident(id)) = inner.first() {
                if id.to_string() == "serde" {
                    if let Some(TokenTree::Group(args)) = inner.get(1) {
                        if args
                            .stream()
                            .to_string()
                            .split(',')
                            .any(|a| a.trim() == "skip")
                        {
                            skip = true;
                        }
                    }
                }
            }
        }
        *i += 1;
    }
    skip
}

/// Consumes a visibility qualifier (`pub`, `pub(crate)`, ...), if present.
fn eat_vis(toks: &[TokenTree], i: &mut usize) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Consumes a type, tracking `<...>` nesting, up to a top-level comma (also
/// consumed) or end of stream.
fn eat_type_until_comma(toks: &[TokenTree], i: &mut usize) {
    let mut depth = 0i64;
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(g: &Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < toks.len() {
        let skip = eat_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        eat_vis(&toks, &mut i);
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => panic!("serde_derive: expected field name, found `{t}`"),
        };
        i += 1;
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            t => panic!("serde_derive: expected `:` after field `{name}`, found `{t}`"),
        }
        eat_type_until_comma(&toks, &mut i);
        out.push(Field { name, skip });
    }
    out
}

fn parse_tuple_fields(g: &Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < toks.len() {
        let skip = eat_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        eat_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        eat_type_until_comma(&toks, &mut i);
        out.push(Field {
            name: out.len().to_string(),
            skip,
        });
    }
    out
}

fn parse_variants(g: &Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < toks.len() {
        eat_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => panic!("serde_derive: expected variant name, found `{t}`"),
        };
        i += 1;
        let mut fields = VariantFields::Unit;
        if let Some(TokenTree::Group(vg)) = toks.get(i) {
            match vg.delimiter() {
                Delimiter::Parenthesis => {
                    fields = VariantFields::Tuple(parse_tuple_fields(vg).len());
                    i += 1;
                }
                Delimiter::Brace => {
                    fields = VariantFields::Named(parse_named_fields(vg));
                    i += 1;
                }
                _ => {}
            }
        }
        // Skip any explicit discriminant up to the separating comma.
        while i < toks.len() && !matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == ',') {
            i += 1;
        }
        i += 1;
        out.push(Variant { name, fields });
    }
    out
}

fn parse_input(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    eat_attrs(&toks, &mut i);
    eat_vis(&toks, &mut i);
    let kw = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("serde_derive: expected `struct` or `enum`, found `{t}`"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("serde_derive: expected type name, found `{t}`"),
    };
    i += 1;
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic type `{name}` is not supported by the offline shim");
    }
    let body = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(parse_tuple_fields(g))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
            t => panic!("serde_derive: unsupported struct body for `{name}`: {t:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g))
            }
            t => panic!("serde_derive: unsupported enum body for `{name}`: {t:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other} {name}`"),
    };
    Input { name, body }
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.body {
        Body::UnitStruct => "::serde::Value::Null".to_string(),
        Body::TupleStruct(fields) if fields.len() == 1 => {
            "::serde::Serialize::to_value(&self.0)".to_string()
        }
        Body::TupleStruct(fields) => {
            let items: Vec<String> = (0..fields.len())
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Body::NamedStruct(fields) => {
            let mut s = String::from(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n",
            );
            for f in fields.iter().filter(|f| !f.skip) {
                s.push_str(&format!(
                    "__fields.push((::std::string::String::from(\"{0}\"), \
                     ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            s.push_str("::serde::Value::Object(__fields)");
            s
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(\
                         ::std::string::String::from(\"{vn}\")),\n"
                    )),
                    VariantFields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), {payload})]),\n",
                            binds = binds.join(", "),
                        ));
                    }
                    VariantFields::Named(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{0}\"), \
                                     ::serde::Serialize::to_value({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Object(::std::vec![{items}]))]),\n",
                            binds = binds.join(", "),
                            items = items.join(", "),
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

/// `match obj_get(...) {{ Some => from_value, None => absent }}` for one
/// named field; skipped fields come from `Default`.
fn named_field_init(ty: &str, owner: &str, f: &Field) -> String {
    if f.skip {
        format!("{}: ::std::default::Default::default(),\n", f.name)
    } else {
        format!(
            "{0}: match ::serde::object_get(__obj, \"{0}\") {{\n\
             ::std::option::Option::Some(__v) => ::serde::Deserialize::from_value(__v)?,\n\
             ::std::option::Option::None => ::serde::Deserialize::absent(\"{ty}{owner}.{0}\")?,\n\
             }},\n",
            f.name
        )
    }
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.body {
        Body::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Body::TupleStruct(fields) if fields.len() == 1 => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        Body::TupleStruct(fields) => {
            let n = fields.len();
            let items: Vec<String> = (0..n)
                .map(|k| format!("::serde::Deserialize::from_value(&__arr[{k}])?"))
                .collect();
            format!(
                "let __arr = __value.as_array().ok_or_else(|| \
                 ::serde::Error::invalid_type(\"array for {name}\"))?;\n\
                 if __arr.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::Error::invalid_type(\
                 \"{n}-element array for {name}\"));\n}}\n\
                 ::std::result::Result::Ok({name}({items}))",
                items = items.join(", "),
            )
        }
        Body::NamedStruct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| named_field_init(name, "", f))
                .collect();
            format!(
                "let __obj = __value.as_object().ok_or_else(|| \
                 ::serde::Error::invalid_type(\"object for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantFields::Tuple(n) if *n == 1 => payload_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::from_value(__payload)?)),\n"
                    )),
                    VariantFields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&__arr[{k}])?"))
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __arr = __payload.as_array().ok_or_else(|| \
                             ::serde::Error::invalid_type(\"array for {name}::{vn}\"))?;\n\
                             if __arr.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::Error::invalid_type(\
                             \"{n}-element array for {name}::{vn}\"));\n}}\n\
                             ::std::result::Result::Ok({name}::{vn}({items}))\n}}\n",
                            items = items.join(", "),
                        ));
                    }
                    VariantFields::Named(fields) => {
                        let inits: String = fields
                            .iter()
                            .map(|f| named_field_init(name, &format!("::{vn}"), f))
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __obj = __payload.as_object().ok_or_else(|| \
                             ::serde::Error::invalid_type(\"object for {name}::{vn}\"))?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{\n{inits}}})\n}}\n",
                        ));
                    }
                }
            }
            format!(
                "match __value {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(\
                 ::serde::Error::unknown_variant(\"{name}\", __other)),\n\
                 }},\n\
                 ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                 let (__tag, __payload) = (&__pairs[0].0, &__pairs[0].1);\n\
                 match __tag.as_str() {{\n\
                 {payload_arms}\
                 __other => ::std::result::Result::Err(\
                 ::serde::Error::unknown_variant(\"{name}\", __other)),\n\
                 }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(\
                 ::serde::Error::invalid_type(\"string or 1-key object for {name}\")),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n\
         fn from_value(__value: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}
