//! Property-based soundness for the fast-path simulator's invalidation
//! edges — the places where memoized fetch/decode state must be dropped
//! for the fast path to stay byte-identical to the reference:
//!
//! * random gadgets that *rewrite their own code pages* must see the
//!   decode cache invalidated (page-version bump + fence.i flush), with
//!   and without explicit synchronization;
//! * *satp remaps* must never replay the old address space's decodes at
//!   a re-used virtual address;
//! * `Platform::clone()` mid-run with the fast path on (a CoW fork that
//!   deliberately colds the decode cache and fetch memo) must behave
//!   exactly like the uninterrupted run.

use proptest::prelude::*;

use teesec_isa::reg::Reg;
use teesec_tee::platform::Platform;
use teesec_uarch::core::Core;
use teesec_uarch::mem::Memory;
use teesec_uarch::CoreConfig;

#[path = "common/gadgets.rs"]
mod gadgets;
use gadgets::{emit_alu_body, satp_remap_gadget, smc_gadget_program, BASE, REMAP_PA1, REMAP_PA2};

const BOUND: u64 = 500_000;

/// Runs `words` at [`BASE`] on a fresh core with the fast path forced to
/// `fast`, to completion. Panics if the program never halts.
fn run_program(words: &[u32], extra: &[(u64, u64)], cfg: &CoreConfig, fast: bool) -> Core {
    let mut mem = Memory::new();
    mem.load_words(BASE, words);
    for &(addr, value) in extra {
        mem.write_u64(addr, value);
    }
    let mut core = Core::new(cfg.clone(), mem, BASE);
    core.trace.set_enabled(false);
    core.set_fast_path(fast);
    while !core.halted && core.cycle < BOUND {
        core.step();
    }
    assert!(core.halted, "program did not halt within {BOUND} cycles");
    core.drain();
    core
}

/// Asserts the two runs are state-identical: cycle count, registers,
/// memory, and the full counter digest.
fn assert_same_state(fast: &Core, reference: &Core, what: &str) {
    assert_eq!(fast.cycle, reference.cycle, "{what}: cycle count diverged");
    for r in Reg::all() {
        assert_eq!(
            fast.reg(r),
            reference.reg(r),
            "{what}: register {r} diverged"
        );
    }
    assert!(
        fast.mem.first_difference(&reference.mem).is_none(),
        "{what}: memory diverged"
    );
    assert_eq!(
        fast.counters(),
        reference.counters(),
        "{what}: counters diverged"
    );
}

proptest! {
    /// Self-modifying code: every store into an executing page bumps the
    /// page version, so the fast path re-decodes exactly what the
    /// reference path fetches — synced (fence + fence.i) or racing the
    /// front end (stale fetches are reference behavior, and must be
    /// *identically* stale).
    #[test]
    fn self_modifying_gadget_fast_path_matches_reference(
        seed in any::<u64>(),
        patches in 1usize..5,
        sync in any::<bool>(),
        xiangshan in any::<bool>(),
    ) {
        let cfg = if xiangshan {
            CoreConfig::xiangshan()
        } else {
            CoreConfig::boom()
        };
        let (words, expected) = smc_gadget_program(seed, patches, sync);
        let reference = run_program(&words, &[], &cfg, false);
        let fast = run_program(&words, &[], &cfg, true);
        assert_same_state(&fast, &reference, &format!("smc seed {seed}"));
        if sync {
            prop_assert_eq!(
                fast.reg(Reg::A0), expected,
                "seed {}: a synced patch did not execute — stale decode served", seed
            );
        }
    }

    /// satp remap: re-entering the same VA under a different root must
    /// fetch (and decode) the *new* physical page. The decode cache is
    /// keyed physically and the fetch memo dies at every serializing
    /// instruction, so both arms must execute page 1 then page 2 — and
    /// leave the exact a0 the two pages' immediates sum to.
    #[test]
    fn satp_remap_never_replays_the_old_address_space(seed in any::<u64>()) {
        let cfg = CoreConfig::boom();
        let (supervisor, pages, tables, expected) = satp_remap_gadget(seed);
        let with_pages = |fast: bool| {
            let mut mem = Memory::new();
            mem.load_words(BASE, &supervisor);
            mem.load_words(REMAP_PA1, &pages[0]);
            mem.load_words(REMAP_PA2, &pages[1]);
            for &(addr, value) in &tables {
                mem.write_u64(addr, value);
            }
            let mut core = Core::new(cfg.clone(), mem, BASE);
            core.trace.set_enabled(false);
            core.set_fast_path(fast);
            while !core.halted && core.cycle < BOUND {
                core.step();
            }
            assert!(core.halted, "remap gadget did not halt");
            core.drain();
            core
        };
        let reference = with_pages(false);
        let fast = with_pages(true);
        assert_same_state(&fast, &reference, &format!("satp remap seed {seed}"));
        prop_assert_eq!(
            fast.reg(Reg::A0), expected,
            "seed {}: wrong a0 — a stale translation or decode survived the remap", seed
        );
        prop_assert_eq!(fast.reg(Reg::S2), 2, "both S-mode entries must have trapped back");
    }

    /// `Platform::clone()` mid-run with the fast path on is
    /// indistinguishable from never forking: the clone's decode cache and
    /// fetch memo start cold (CoW halves' page versions advance
    /// independently), and cold caches are an elision-only slowdown,
    /// never a behavior change.
    #[test]
    fn platform_clone_mid_run_with_fast_path_matches_uninterrupted(
        seed in any::<u64>(),
        split in 1u64..4_000,
    ) {
        let mut p = Platform::builder(CoreConfig::boom())
            .host_code(|a, _| emit_alu_body(a, seed, 40))
            .build()
            .expect("platform build");
        p.core.trace.set_enabled(false);
        p.core.set_fast_path(true);
        let mut straight = p.clone();

        let fork_at = p.core.cycle + split;
        while !p.core.halted && p.core.cycle < fork_at {
            p.core.step();
        }
        let mut resumed = p.clone(); // the mid-run CoW fork
        prop_assert!(resumed.core.fast_path(), "fork must inherit the fast path");
        drop(p); // the original may die; the fork must not care

        let bound = straight.core.cycle + BOUND;
        while !resumed.core.halted && resumed.core.cycle < bound {
            resumed.core.step();
        }
        while !straight.core.halted && straight.core.cycle < bound {
            straight.core.step();
        }
        prop_assert!(resumed.core.halted, "seed {seed}: forked platform did not halt");
        prop_assert!(straight.core.halted, "seed {seed}: straight platform did not halt");
        resumed.core.drain();
        straight.core.drain();
        assert_same_state(
            &resumed.core,
            &straight.core,
            &format!("platform fork seed {seed}"),
        );
    }
}

/// Regression for the `Memory::write_bytes` page-chunked path at the
/// core level. Aligned stores can never straddle a 4 KiB page, so the
/// spanning writer is the DMA-style `write_bytes` — exactly what
/// snapshot restores and image loads use. Mid-run, an 8-byte write
/// straddling the boundary into the page the core is *about to execute*
/// must bump both touched pages' versions exactly once, and the decode
/// cache must re-decode the patched word instead of serving the
/// placeholder it may already have cached.
#[test]
fn page_spanning_write_into_executing_page_invalidates_decode() {
    use teesec_isa::asm::Assembler;
    use teesec_isa::csr;
    use teesec_isa::inst::{AluOp, Inst};

    const NOP: u32 = 0x0000_0013;
    let page1 = BASE + 0x1000;
    let imm = 77i32;
    let patched = Inst::AluImm {
        op: AluOp::Add,
        rd: Reg::A0,
        rs1: Reg::A0,
        imm,
        word: false,
    }
    .encode();
    // Low word re-writes the pad nop with identical bytes (still a
    // write); high word replaces page 1's first instruction.
    let value = ((patched as u64) << 32) | NOP as u64;

    let mut a = Assembler::new(BASE);
    a.la(Reg::T5, "handler");
    a.csrw(csr::MTVEC, Reg::T5);
    // A warm-up loop long enough that the patch below lands while the
    // core is still spinning here, well before fetch reaches page 1.
    a.li(Reg::T4, 40);
    a.label("spin");
    a.addi(Reg::T4, Reg::T4, -1);
    a.bnez(Reg::T4, "spin");
    a.inst(Inst::FenceI); // discard anything fetch speculated past the loop
    while a.cursor() < page1 {
        a.nop();
    }
    a.addi(Reg::A0, Reg::A0, 1); // first word of page 1: gets patched
    a.j("handler");
    a.label("handler");
    a.inst(Inst::Ebreak);
    let words = a.assemble().expect("assemble");

    let run = |fast: bool| {
        let mut mem = Memory::new();
        mem.load_words(BASE, &words);
        let mut core = Core::new(CoreConfig::boom(), mem, BASE);
        core.trace.set_enabled(false);
        core.set_fast_path(fast);
        // Start the pipeline, then patch while the core spins in page 0.
        for _ in 0..5 {
            core.step();
        }
        assert!(!core.halted);
        let v0 = (core.mem.page_version(BASE), core.mem.page_version(page1));
        core.mem.write_bytes(page1 - 4, &value.to_le_bytes());
        assert_eq!(
            core.mem.page_version(BASE),
            v0.0 + 1,
            "one spanning write must bump the first page's version exactly once"
        );
        assert_eq!(
            core.mem.page_version(page1),
            v0.1 + 1,
            "one spanning write must bump the second page's version exactly once"
        );
        while !core.halted && core.cycle < BOUND {
            core.step();
        }
        assert!(core.halted, "spanning-write gadget did not halt");
        core.drain();
        core
    };
    let reference = run(false);
    let fast = run(true);
    assert_same_state(&fast, &reference, "page-spanning write");
    assert_eq!(
        fast.reg(Reg::A0),
        imm as u64,
        "the patched first word of the executing page must execute"
    );
}

/// Deterministic witness that the self-modifying-code path really
/// exercises the invalidation machinery (so the proptest above is not
/// vacuously comparing two cold-cache runs).
#[test]
fn synced_smc_gadget_invalidates_the_decode_cache() {
    let (words, expected) = smc_gadget_program(0xD15A_55EB, 3, true);
    let core = run_program(&words, &[], &CoreConfig::boom(), true);
    assert_eq!(
        core.reg(Reg::A0),
        expected,
        "every patch must have executed"
    );
    let stats = core.fast_path_stats();
    assert!(
        stats.decode.invalidations > 0,
        "rewriting an executing page must invalidate the decode cache: {stats:?}"
    );
    assert!(
        stats.decode.hits > 0,
        "the cache must also have been in use"
    );
}
