//! Property-based soundness for the PR 4 streaming/snapshot machinery:
//!
//! * the online [`StreamingChecker`] never reports *fewer* findings than
//!   the batch `check_case` pipeline on the same run — and in fact the
//!   two reports serialize byte-identically;
//! * snapshotting a core mid-run (a copy-on-write clone) and then letting
//!   it run to completion is state-identical to the uninterrupted run.

use std::sync::OnceLock;

use proptest::prelude::*;

use teesec::checker::check_case;
use teesec::runner::{run_case, run_case_opts, RunOptions};
use teesec::stream::StreamingChecker;
use teesec::testcase::TestCase;
use teesec::Fuzzer;
use teesec_isa::reg::Reg;
use teesec_uarch::core::Core;
use teesec_uarch::mem::Memory;
use teesec_uarch::CoreConfig;

#[path = "common/gadgets.rs"]
mod gadgets;
use gadgets::{gadget_program, BASE, DATA};

static BOOM_CORPUS: OnceLock<Vec<TestCase>> = OnceLock::new();
static XS_CORPUS: OnceLock<Vec<TestCase>> = OnceLock::new();

/// A shared 120-case default-fuzzer pool per design, generated once.
fn corpus(cfg: &CoreConfig) -> &'static [TestCase] {
    let cell = if cfg.name == "xiangshan" {
        &XS_CORPUS
    } else {
        &BOOM_CORPUS
    };
    cell.get_or_init(|| Fuzzer::with_target(120).generate(cfg))
}

proptest! {
    /// Soundness: on fuzzer-shaped cases with randomly perturbed setup
    /// parameters, the streaming checker reports at least as many findings
    /// as the batch pipeline — and the full reports are byte-identical.
    #[test]
    fn streaming_never_reports_fewer_findings_than_batch(
        idx in any::<usize>(),
        clear_hpcs in any::<bool>(),
        xiangshan in any::<bool>(),
    ) {
        let cfg = if xiangshan {
            CoreConfig::xiangshan()
        } else {
            CoreConfig::boom()
        };
        let pool = corpus(&cfg);
        let mut tc = pool[idx % pool.len()].clone();
        tc.sm_clear_hpcs = clear_hpcs;

        let batch_outcome = run_case(&tc, &cfg).expect("batch build");
        let batch = check_case(&tc, &batch_outcome, &cfg);

        let mut stream_outcome = run_case_opts(
            &tc,
            &cfg,
            RunOptions {
                sink: Some(Box::new(StreamingChecker::new(&tc, &cfg))),
                buffer_trace: false,
                ..RunOptions::default()
            },
        )
        .expect("streaming build");
        let checker = stream_outcome
            .platform
            .core
            .trace
            .take_sink()
            .expect("sink survives the run")
            .into_any()
            .downcast::<StreamingChecker>()
            .expect("sink is the streaming checker");
        let stream = checker.finish(&tc, &stream_outcome);

        prop_assert!(
            stream.findings.len() >= batch.findings.len(),
            "{} on {}: streaming dropped findings ({} < {})",
            tc.name, cfg.name, stream.findings.len(), batch.findings.len()
        );
        prop_assert_eq!(
            serde_json::to_string(&stream).unwrap(),
            serde_json::to_string(&batch).unwrap(),
            "{} on {}: reports diverge", tc.name, cfg.name
        );
    }

    /// Snapshot/restore soundness at the core level: clone the core after
    /// `split` cycles (the CoW fork the platform snapshot relies on), let
    /// the clone finish the run, and compare against a never-interrupted
    /// twin — registers, memory, cycle count, and counters must all match.
    #[test]
    fn snapshot_plus_remaining_steps_matches_uninterrupted_run(
        seed in any::<u64>(),
        split in 1u64..2_000,
        branchy in any::<bool>(),
    ) {
        let words = gadget_program(seed, 40, branchy);
        let mut mem = Memory::new();
        mem.load_words(BASE, &words);
        for off in (0..0x200u64).step_by(8) {
            mem.write_u64(DATA + off, seed ^ off);
        }
        let mut core = Core::new(CoreConfig::boom(), mem, BASE);
        core.trace.set_enabled(false);
        let mut straight = core.clone();

        while !core.halted && core.cycle < split {
            core.step();
        }
        let mut resumed = core.clone(); // the snapshot
        drop(core); // the original may die; the snapshot must not care

        const BOUND: u64 = 500_000;
        while !resumed.halted && resumed.cycle < BOUND {
            resumed.step();
        }
        while !straight.halted && straight.cycle < BOUND {
            straight.step();
        }
        prop_assert!(resumed.halted, "seed {seed}: resumed core did not halt");
        prop_assert!(straight.halted, "seed {seed}: straight core did not halt");
        resumed.drain();
        straight.drain();

        prop_assert_eq!(resumed.cycle, straight.cycle, "seed {seed}: cycle count");
        for r in Reg::all() {
            prop_assert_eq!(
                resumed.reg(r), straight.reg(r),
                "seed {seed}: register {} diverged", r
            );
        }
        prop_assert!(
            resumed.mem.first_difference(&straight.mem).is_none(),
            "seed {seed}: memory diverged"
        );
        prop_assert_eq!(resumed.counters(), straight.counters(), "seed {seed}: counters");
    }
}
