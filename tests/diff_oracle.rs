//! Integration tests for the differential co-simulation oracle: the
//! out-of-order core must match the reference ISS on every bundled access
//! path, on both design presets, and the oracle must catch a planted
//! architectural bug, naming the first bad retire.

use teesec::assemble::{assemble_case, CaseParams};
use teesec::diff::{diff_case, diff_corpus, DiffOptions, DiffVerdict, FaultInjection};
use teesec::paths::AccessPath;
use teesec_isa::reg::Reg;
use teesec_uarch::config::CoreConfig;

fn default_corpus(cfg: &CoreConfig) -> Vec<teesec::TestCase> {
    AccessPath::all()
        .iter()
        .filter_map(|p| assemble_case(*p, CaseParams::default(), cfg).ok())
        .collect()
}

#[test]
fn all_default_cases_match_the_reference_on_boom() {
    let cfg = CoreConfig::boom();
    let summary = diff_corpus(&default_corpus(&cfg), &cfg, &DiffOptions::default());
    assert_eq!(
        summary.divergences,
        0,
        "no default case may diverge on {}: {:#?}",
        cfg.name,
        summary
            .cases
            .iter()
            .filter(|c| c.verdict.diverged())
            .collect::<Vec<_>>()
    );
    assert!(summary.matches > 0, "the corpus must not be empty");
    assert!(
        summary.retires_compared > 1_000,
        "lockstep must actually compare retires (got {})",
        summary.retires_compared
    );
}

#[test]
fn all_default_cases_match_the_reference_on_xiangshan() {
    let cfg = CoreConfig::xiangshan();
    let summary = diff_corpus(&default_corpus(&cfg), &cfg, &DiffOptions::default());
    assert_eq!(
        summary.divergences,
        0,
        "no default case may diverge on {}: {:#?}",
        cfg.name,
        summary
            .cases
            .iter()
            .filter(|c| c.verdict.diverged())
            .collect::<Vec<_>>()
    );
    assert!(summary.matches > 0);
}

#[test]
fn wider_register_file_stride_still_matches() {
    let cfg = CoreConfig::boom();
    let opts = DiffOptions {
        stride: 64,
        ..DiffOptions::default()
    };
    let tc = assemble_case(AccessPath::LoadMemMiss, CaseParams::default(), &cfg).unwrap();
    let v = diff_case(&tc, &cfg, &opts).expect("build");
    assert!(matches!(v, DiffVerdict::Match { .. }), "got {v:?}");
}

/// The oracle self-test: plant a single-bit-pattern corruption in the
/// core's architectural register file mid-run and require a structured
/// divergence that does not pre-date the injection.
#[test]
fn planted_ooo_bug_is_reported_with_the_first_bad_retire() {
    let cfg = CoreConfig::xiangshan();
    let tc = assemble_case(AccessPath::StoreL1Hit, CaseParams::default(), &cfg).unwrap();
    let opts = DiffOptions {
        fault: Some(FaultInjection::CorruptArchReg {
            at_retire: 40,
            reg: Reg::T4,
            xor: 0x1,
        }),
        ..DiffOptions::default()
    };
    let v = diff_case(&tc, &cfg, &opts).expect("build");
    let DiffVerdict::Diverged(d) = v else {
        panic!("planted corruption must be caught, got {v:?}");
    };
    assert!(
        d.retire_seq >= 40,
        "first bad retire is at or after the injection"
    );
    assert!(!d.inst.is_empty(), "the report names the instruction");
    assert_eq!(d.core.regs.len(), 32);
    assert_eq!(d.iss.regs.len(), 32);
}

/// The same case without the fault knob stays clean — the self-test
/// discriminates, it does not just always fire.
#[test]
fn self_test_discriminates_clean_from_faulty() {
    let cfg = CoreConfig::xiangshan();
    let tc = assemble_case(AccessPath::StoreL1Hit, CaseParams::default(), &cfg).unwrap();
    let v = diff_case(&tc, &cfg, &DiffOptions::default()).expect("build");
    assert!(matches!(v, DiffVerdict::Match { .. }), "got {v:?}");
}
