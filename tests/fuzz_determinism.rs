//! Fuzzer determinism: a seeded fuzzer is a pure function of its seed —
//! byte-identical corpora across calls, results unchanged by engine worker
//! count, and distinct seeds producing distinct corpora.

use teesec::campaign::PhaseTiming;
use teesec::engine::{Engine, EngineOptions};
use teesec::fuzz::Fuzzer;
use teesec_uarch::CoreConfig;

/// 300 cases reaches the randomized phase-2 sweep (the systematic phase 1
/// contributes ~250 seed-independent cases on BOOM).
const SEEDED_TARGET: usize = 300;

fn corpus_json(fuzzer: &Fuzzer, cfg: &CoreConfig) -> String {
    serde_json::to_string(&fuzzer.generate(cfg)).expect("serialize corpus")
}

#[test]
fn same_seed_yields_byte_identical_corpora() {
    let cfg = CoreConfig::boom();
    for seed in [0x7EE5_EC00u64, 1, 0xDEAD_BEEF] {
        let fuzzer = Fuzzer::with_target(SEEDED_TARGET).with_seed(seed);
        let first = corpus_json(&fuzzer, &cfg);
        let second = corpus_json(&fuzzer, &cfg);
        assert_eq!(first, second, "seed {seed:#x} not reproducible");
    }
}

#[test]
fn distinct_seeds_yield_distinct_corpora() {
    let cfg = CoreConfig::boom();
    let a = corpus_json(&Fuzzer::with_target(SEEDED_TARGET).with_seed(7), &cfg);
    let b = corpus_json(&Fuzzer::with_target(SEEDED_TARGET).with_seed(8), &cfg);
    assert_ne!(a, b, "distinct seeds must diverge in the randomized phase");
}

#[test]
fn corpus_results_are_independent_of_worker_count() {
    let cfg = CoreConfig::boom();
    let corpus = Fuzzer::with_target(30).with_seed(99).generate(&cfg);
    let run = |threads: usize| {
        let opts = EngineOptions {
            threads,
            ..EngineOptions::default()
        };
        let (result, _) =
            Engine::new(cfg.clone(), opts).run_corpus(&corpus, PhaseTiming::default());
        serde_json::to_string(&result.cases).expect("serialize cases")
    };
    let single = run(1);
    assert_eq!(run(2), single, "2 workers diverged from 1");
    assert_eq!(run(5), single, "5 workers diverged from 1");
}
