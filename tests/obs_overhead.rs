//! Overhead guard: counters harvesting and event emission must stay a
//! bounded tax on the engine, not a second simulation.
//!
//! The bound is deliberately loose (CI machines are noisy); it exists to
//! catch pathological regressions — e.g. harvesting accidentally cloning
//! the whole trace per case — not to benchmark. Real numbers live in
//! `cargo bench -p teesec-bench` and `BENCH_pr2.json`.

use std::time::Instant;

use teesec::campaign::PhaseTiming;
use teesec::engine::{Engine, EngineOptions, EventSink};
use teesec::fuzz::Fuzzer;
use teesec_uarch::CoreConfig;

#[test]
fn instrumented_run_stays_within_a_sane_multiple() {
    let cfg = CoreConfig::boom();
    let corpus = Fuzzer::with_target(10).generate(&cfg);

    // Warm-up: touch every code path once so lazy init and page faults
    // don't land inside either measured window.
    let _ = Engine::new(cfg.clone(), EngineOptions::default())
        .run_corpus(&corpus[..2], PhaseTiming::default());

    let t0 = Instant::now();
    let (plain, _) = Engine::new(cfg.clone(), EngineOptions::default())
        .run_corpus(&corpus, PhaseTiming::default());
    let plain_us = t0.elapsed().as_micros();

    let t1 = Instant::now();
    let (instrumented, _) = Engine::new(
        cfg,
        EngineOptions {
            counters: true,
            events: Some(EventSink::new(std::io::sink())),
            ..EngineOptions::default()
        },
    )
    .run_corpus(&corpus, PhaseTiming::default());
    let instrumented_us = t1.elapsed().as_micros();

    assert_eq!(plain.case_count, instrumented.case_count);
    assert_eq!(plain.classes_found, instrumented.classes_found);
    let obs = instrumented.engine.unwrap().obs.expect("obs collected");
    assert_eq!(obs.case_cycles.count(), corpus.len() as u64);

    // 10x + half a second of absolute slack: generous enough for CI
    // noise, tight enough to catch an accidental O(trace) blow-up.
    let bound = plain_us * 10 + 500_000;
    assert!(
        instrumented_us <= bound,
        "instrumented engine took {instrumented_us}us vs {plain_us}us uninstrumented \
         (bound {bound}us) — observability overhead regressed"
    );
}
