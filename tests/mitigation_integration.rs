//! Mitigation integration tests: each Table 4 countermeasure must eliminate
//! exactly the classes the paper (and our measured refinements) attribute
//! to it, while architectural correctness is preserved.

use teesec::campaign::Campaign;
use teesec::fuzz::Fuzzer;
use teesec::report::LeakClass;
use teesec_uarch::config::MitigationSet;
use teesec_uarch::CoreConfig;

const CASES: usize = 150;

fn classes_with(base: CoreConfig, m: MitigationSet) -> std::collections::BTreeSet<LeakClass> {
    let (r, _) = Campaign::new(base.with_mitigations(m), Fuzzer::with_target(CASES)).run();
    r.classes_found
}

#[test]
fn clear_illegal_data_returns_covers_d2_and_d4_to_d8() {
    let m = MitigationSet {
        clear_illegal_data_returns: true,
        ..Default::default()
    };
    let boom = classes_with(CoreConfig::boom(), m);
    for c in [
        LeakClass::D2,
        LeakClass::D4,
        LeakClass::D5,
        LeakClass::D6,
        LeakClass::D7,
    ] {
        assert!(!boom.contains(&c), "{c} must be eliminated on BOOM");
    }
    // D1 is unaffected: the prefetcher performs no check whose failure
    // could zero anything (paper: D1 has no mitigation in Table 4).
    assert!(boom.contains(&LeakClass::D1), "D1 survives (paper)");
    let xs = classes_with(CoreConfig::xiangshan(), m);
    for c in [
        LeakClass::D4,
        LeakClass::D5,
        LeakClass::D6,
        LeakClass::D7,
        LeakClass::D8,
    ] {
        assert!(!xs.contains(&c), "{c} must be eliminated on XiangShan");
    }
}

#[test]
fn flush_lfb_eliminates_d3_on_boom() {
    let m = MitigationSet {
        flush_lfb_on_domain_switch: true,
        ..Default::default()
    };
    let boom = classes_with(CoreConfig::boom(), m);
    assert!(
        !boom.contains(&LeakClass::D3),
        "D3 eliminated by LFB flush (paper)"
    );
    // Flushing the LFB does not stop fresh prefetch fills afterwards.
    assert!(
        boom.contains(&LeakClass::D1),
        "D1 survives LFB flushing (paper)"
    );
}

#[test]
fn flush_l1d_covers_d4_to_d8_only_on_xiangshan() {
    let m = MitigationSet {
        flush_l1d_on_domain_switch: true,
        ..Default::default()
    };
    let xs = classes_with(CoreConfig::xiangshan(), m);
    for c in [LeakClass::D4, LeakClass::D5, LeakClass::D6, LeakClass::D7] {
        assert!(!xs.contains(&c), "{c} eliminated on XiangShan (paper's X*)");
    }
    // BOOM is NOT helped: the faulting miss forwards to L2 regardless —
    // the paper's footnote "* items are only effective on XiangShan".
    let boom = classes_with(CoreConfig::boom(), m);
    assert!(
        boom.contains(&LeakClass::D4),
        "BOOM still leaks D4 after L1D flush"
    );
}

#[test]
fn flush_store_buffer_eliminates_d8() {
    let m = MitigationSet {
        flush_store_buffer_on_domain_switch: true,
        ..Default::default()
    };
    let xs = classes_with(CoreConfig::xiangshan(), m);
    assert!(
        !xs.contains(&LeakClass::D8),
        "D8 eliminated by SB flush (paper)"
    );
    // The verbatim-hit path is unaffected.
    assert!(
        xs.contains(&LeakClass::D4),
        "D4 survives SB flushing (paper)"
    );
}

#[test]
fn bpu_and_hpc_clearing_eliminates_metadata_leaks() {
    let m = MitigationSet {
        flush_bpu_on_domain_switch: true,
        clear_hpc_on_domain_switch: true,
        ..Default::default()
    };
    for cfg in [CoreConfig::boom(), CoreConfig::xiangshan()] {
        let classes = classes_with(cfg.clone(), m);
        assert!(
            !classes.contains(&LeakClass::M1),
            "M1 eliminated on {}",
            cfg.name
        );
        assert!(
            !classes.contains(&LeakClass::M2),
            "M2 eliminated on {}",
            cfg.name
        );
        // Data leaks are untouched by metadata clearing.
        assert!(
            classes.contains(&LeakClass::D4),
            "D4 survives on {}",
            cfg.name
        );
    }
}

#[test]
fn bpu_domain_tagging_eliminates_m2_without_flushing() {
    // The paper's §8 alternative: tag entries with the training domain
    // instead of flushing. M2 disappears while same-domain prediction
    // state (and every data behaviour) is preserved.
    let m = MitigationSet {
        tag_bpu_with_domain: true,
        ..Default::default()
    };
    for cfg in [CoreConfig::boom(), CoreConfig::xiangshan()] {
        let classes = classes_with(cfg.clone(), m);
        assert!(
            !classes.contains(&LeakClass::M2),
            "M2 eliminated by tagging on {}",
            cfg.name
        );
        assert!(
            classes.contains(&LeakClass::M1),
            "tagging the BPU does not touch HPCs"
        );
        assert!(classes.contains(&LeakClass::D4), "data leaks unaffected");
    }
}

#[test]
fn sm_software_hpc_clearing_also_eliminates_m1() {
    // The Keystone-level software fix the paper notes is missing: the SM
    // zeroes counters at every enclave entry/exit.
    use teesec::assemble::{assemble_case, CaseParams};
    use teesec::paths::AccessPath;
    let cfg = CoreConfig::boom();
    let mut tc = assemble_case(AccessPath::HpcRead, CaseParams::default(), &cfg).unwrap();
    tc.sm_clear_hpcs = true;
    let outcome = teesec::run_case(&tc, &cfg).expect("run");
    let report = teesec::check_case(&tc, &outcome, &cfg);
    assert!(
        report
            .findings
            .iter()
            .all(|f| f.class != Some(LeakClass::M1)),
        "SM-level counter clearing closes M1: {:?}",
        report.findings
    );
}

#[test]
fn every_mitigation_preserves_architectural_results() {
    // A compute+memory workload must produce identical architectural
    // results under every mitigation combination.
    use teesec_isa::reg::Reg;
    use teesec_tee::platform::Platform;
    let run = |m: MitigationSet| {
        let mut p = Platform::builder(CoreConfig::xiangshan().with_mitigations(m))
            .host_code(|a, lay| {
                a.li(Reg::T0, lay.shared_base);
                a.li(Reg::S2, 0);
                for k in 0..6i32 {
                    a.li(Reg::T1, (k as u64) * 31 + 7);
                    a.sd(Reg::T1, Reg::T0, 8 * k);
                    a.ld(Reg::T2, Reg::T0, 8 * k);
                    a.add(Reg::S2, Reg::S2, Reg::T2);
                }
            })
            .build()
            .expect("build");
        p.run(3_000_000);
        assert!(p.core.halted);
        p.core.reg(Reg::S2)
    };
    let expected = run(MitigationSet::default());
    for m in [
        MitigationSet {
            serialize_pmp_check: true,
            ..Default::default()
        },
        MitigationSet {
            clear_illegal_data_returns: true,
            ..Default::default()
        },
        MitigationSet::flush_everything(),
        MitigationSet::all(),
    ] {
        assert_eq!(
            run(m),
            expected,
            "mitigation {m:?} altered architectural state"
        );
    }
}
