//! Fast-path byte-identity: the fast-path simulator (page-keyed decode
//! cache, fetch-line memo, dirty-scan watermark, LSU retry elision,
//! frozen trace prefixes) must be *indistinguishable* from the reference
//! path in every checker-visible output. Over the full default corpus,
//! on both designs, with the fast path forced on and off, this suite
//! compares the serialized [`CheckReport`] (which embeds the provenance
//! chains), the per-case [`CaseCoverage`], and the microarchitectural
//! counter digest — through both the batch and the streaming pipeline.
//!
//! The fast path is elision-only by construction; this harness is the
//! lock on that construction.

use teesec::checker::check_case_coverage;
use teesec::runner::{run_case_opts, RunOptions, SnapshotCache};
use teesec::stream::StreamingChecker;
use teesec::testcase::TestCase;
use teesec::Fuzzer;
use teesec_uarch::CoreConfig;

/// Batch pipeline under a forced fast-path setting: serialized report
/// (findings + provenance chains), coverage, and counter digest.
fn batch_outputs(tc: &TestCase, cfg: &CoreConfig, fast: bool) -> (String, String, String) {
    let outcome = run_case_opts(
        tc,
        cfg,
        RunOptions {
            fast_path: Some(fast),
            ..RunOptions::default()
        },
    )
    .expect("build");
    assert_eq!(
        outcome.platform.core.fast_path(),
        fast,
        "the override must stick for the whole case"
    );
    let (report, coverage) = check_case_coverage(tc, &outcome, cfg);
    (
        serde_json::to_string(&report).expect("report serializes"),
        serde_json::to_string(&coverage).expect("coverage serializes"),
        serde_json::to_string(&outcome.platform.core.counters()).expect("counters serialize"),
    )
}

/// Streaming pipeline (online checker, no trace buffering, snapshot
/// forks) under a forced fast-path setting.
fn streaming_outputs(
    tc: &TestCase,
    cfg: &CoreConfig,
    fast: bool,
    cache: &SnapshotCache,
) -> (String, String) {
    let mut outcome = run_case_opts(
        tc,
        cfg,
        RunOptions {
            snapshot_cache: Some(cache),
            sink: Some(Box::new(StreamingChecker::with_coverage(tc, cfg))),
            buffer_trace: false,
            fast_path: Some(fast),
            ..RunOptions::default()
        },
    )
    .expect("streaming build");
    let checker = outcome
        .platform
        .core
        .trace
        .take_sink()
        .expect("sink survives the run")
        .into_any()
        .downcast::<StreamingChecker>()
        .expect("sink is the streaming checker");
    let (report, coverage) = checker.finish_coverage(tc, &outcome);
    (
        serde_json::to_string(&report).expect("report serializes"),
        serde_json::to_string(&coverage.expect("coverage recording was on"))
            .expect("coverage serializes"),
    )
}

/// The headline guarantee: over the full default corpus, on both
/// designs, the batch pipeline's report, coverage, and counter digest
/// are byte-identical with the fast path on and off.
#[test]
fn full_corpus_batch_outputs_are_byte_identical_across_designs() {
    for cfg in [CoreConfig::boom(), CoreConfig::xiangshan()] {
        let corpus = Fuzzer::paper_default().generate(&cfg);
        assert!(!corpus.is_empty());
        let mut findings = 0usize;
        let mut chains = 0usize;
        for tc in &corpus {
            let (ref_report, ref_cov, ref_ctr) = batch_outputs(tc, &cfg, false);
            let (fast_report, fast_cov, fast_ctr) = batch_outputs(tc, &cfg, true);
            assert_eq!(
                fast_report, ref_report,
                "case {} on {}: fast-path report differs from reference",
                tc.name, cfg.name
            );
            assert_eq!(
                fast_cov, ref_cov,
                "case {} on {}: fast-path coverage differs from reference",
                tc.name, cfg.name
            );
            assert_eq!(
                fast_ctr, ref_ctr,
                "case {} on {}: fast-path counter digest differs from reference",
                tc.name, cfg.name
            );
            findings += ref_report.matches("\"principle\"").count();
            chains += ref_report.matches("\"finding_index\"").count();
        }
        assert!(
            findings > 0,
            "{}: a corpus with no findings would make the comparison vacuous",
            cfg.name
        );
        assert!(
            chains > 0,
            "{}: no provenance chains were compared",
            cfg.name
        );
    }
}

/// The same identity holds through the streaming pipeline, each arm
/// forking from its own snapshot cache (caches capture simulator state,
/// so sharing one across arms would blur what is being compared).
#[test]
fn full_corpus_streaming_outputs_are_byte_identical_across_designs() {
    for cfg in [CoreConfig::boom(), CoreConfig::xiangshan()] {
        let corpus = Fuzzer::paper_default().generate(&cfg);
        assert!(!corpus.is_empty());
        let ref_cache = SnapshotCache::new();
        let fast_cache = SnapshotCache::new();
        for tc in &corpus {
            let (ref_report, ref_cov) = streaming_outputs(tc, &cfg, false, &ref_cache);
            let (fast_report, fast_cov) = streaming_outputs(tc, &cfg, true, &fast_cache);
            assert_eq!(
                fast_report, ref_report,
                "case {} on {}: streaming fast-path report differs",
                tc.name, cfg.name
            );
            assert_eq!(
                fast_cov, ref_cov,
                "case {} on {}: streaming fast-path coverage differs",
                tc.name, cfg.name
            );
        }
        assert!(
            ref_cache.metrics().hits > 0 && fast_cache.metrics().hits > 0,
            "both arms exercised snapshot forking ({:?} / {:?})",
            ref_cache.metrics(),
            fast_cache.metrics()
        );
    }
}

/// The comparison is not a no-op: with the fast path on, the decode
/// cache and scan elision actually engage over the corpus.
#[test]
fn fast_arm_actually_takes_the_fast_path() {
    let cfg = CoreConfig::boom();
    let corpus = Fuzzer::with_target(8).generate(&cfg);
    let mut hits = 0u64;
    let mut skips = 0u64;
    for tc in &corpus {
        let outcome = run_case_opts(
            tc,
            &cfg,
            RunOptions {
                fast_path: Some(true),
                ..RunOptions::default()
            },
        )
        .expect("build");
        let stats = outcome.platform.core.fast_path_stats();
        hits += stats.decode.hits;
        skips += stats.scan_skips;
    }
    assert!(hits > 0, "decode cache never hit");
    assert!(skips > 0, "dirty-scan elision never engaged");
}
