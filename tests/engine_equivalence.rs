//! Locks the engine to the serial reference: `Campaign::run` and
//! `Campaign::run_engine` must produce identical `CampaignResult`s (and
//! identical retained reports) at every worker count — timing and the
//! engine-metrics attachment are the only permitted differences.

use teesec::campaign::{CampaignResult, PhaseTiming};
use teesec::engine::EngineOptions;
use teesec::fuzz::Fuzzer;
use teesec::Campaign;
use teesec_uarch::CoreConfig;

const CORPUS: usize = 40;

/// Strips the fields the engine is allowed to change: wall-clock timing
/// and its own metrics attachment.
fn normalized(mut result: CampaignResult) -> CampaignResult {
    result.timing = PhaseTiming::default();
    result.engine = None;
    result
}

#[test]
fn engine_matches_serial_at_1_2_and_7_threads() {
    let campaign = Campaign::new(CoreConfig::boom(), Fuzzer::with_target(CORPUS)).keep_reports();
    let (serial, serial_reports) = campaign.run();
    assert_eq!(serial.case_count, CORPUS);
    assert!(
        !serial.classes_found.is_empty(),
        "reference corpus must uncover leaks for the comparison to be meaningful"
    );

    for threads in [1usize, 2, 7] {
        let (engine, engine_reports) = campaign.run_engine(EngineOptions {
            threads,
            ..EngineOptions::default()
        });
        let metrics = engine.engine.as_ref().expect("engine metrics attached");
        assert_eq!(metrics.threads, threads);
        assert_eq!(metrics.cases_total, CORPUS);
        assert_eq!(metrics.cases_quarantined, 0);
        assert_eq!(
            normalized(engine.clone()),
            normalized(serial.clone()),
            "engine at {threads} threads diverged from serial run"
        );
        assert_eq!(
            engine_reports, serial_reports,
            "retained reports diverged at {threads} threads"
        );
    }
}

/// The production configuration — streaming checker + shared snapshot
/// cache across workers — must be result-identical to the plain batch
/// engine, down to the retained reports, and must actually use the cache.
#[test]
fn streaming_snapshot_engine_matches_batch_engine() {
    let campaign = Campaign::new(CoreConfig::boom(), Fuzzer::with_target(CORPUS)).keep_reports();
    let (batch, batch_reports) = campaign.run_engine(EngineOptions {
        threads: 4,
        ..EngineOptions::default()
    });
    assert!(batch.engine.as_ref().unwrap().snapshot.is_none());

    let (streamed, streamed_reports) = campaign.run_engine(EngineOptions {
        threads: 4,
        streaming: true,
        snapshot_cache: true,
        ..EngineOptions::default()
    });
    assert_eq!(
        normalized(streamed.clone()),
        normalized(batch.clone()),
        "streaming + snapshot-cache engine diverged from the batch engine"
    );
    assert_eq!(
        streamed_reports, batch_reports,
        "retained reports diverged under streaming"
    );
    let cache = streamed
        .engine
        .as_ref()
        .unwrap()
        .snapshot
        .as_ref()
        .expect("snapshot metrics attached when the cache is on");
    assert_eq!(
        (cache.hits + cache.misses + cache.bypasses) as usize,
        CORPUS,
        "every case consults the cache exactly once: {cache:?}"
    );
    assert!(
        cache.hits > 0,
        "a 40-case corpus must share setups: {cache:?}"
    );
}

#[test]
fn engine_matches_serial_on_second_design() {
    let campaign = Campaign::new(CoreConfig::xiangshan(), Fuzzer::with_target(24));
    let (serial, _) = campaign.run();
    let (engine, _) = campaign.run_engine(EngineOptions {
        threads: 3,
        ..EngineOptions::default()
    });
    assert_eq!(normalized(engine), normalized(serial));
}
