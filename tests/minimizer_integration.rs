//! Minimizer integration: a real fuzzer-style leaking case must shrink by
//! at least half while still reproducing the original leak classes, and a
//! diverging case (planted fault) must shrink while still diverging.

use teesec::assemble::{assemble_case, CaseParams, Lifecycle};
use teesec::checker::check_case;
use teesec::diff::{DiffOptions, FaultInjection};
use teesec::minimize::{minimize_case, preserves_classes, preserves_divergence};
use teesec::paths::AccessPath;
use teesec::runner::run_case;
use teesec_isa::reg::Reg;
use teesec_uarch::CoreConfig;

#[test]
fn leaking_case_shrinks_by_half_and_keeps_the_finding() {
    let cfg = CoreConfig::xiangshan();
    // The richest lifecycle gives the minimizer scaffolding to strip.
    let params = CaseParams {
        lifecycle: Lifecycle::StopResumeStop,
        ..CaseParams::default()
    };
    let tc = assemble_case(AccessPath::LoadL1Hit, params, &cfg).expect("assemble");
    let outcome = run_case(&tc, &cfg).expect("run");
    let classes = check_case(&tc, &outcome, &cfg).classes();
    assert!(!classes.is_empty(), "the case must leak to begin with");

    let min = minimize_case(&tc, preserves_classes(&cfg, &classes));
    assert!(
        min.final_steps * 2 <= min.original_steps,
        "expected ≥50% shrink, got {} → {} steps ({} trials)",
        min.original_steps,
        min.final_steps,
        min.trials
    );
    // The minimized case independently reproduces every original class.
    let outcome = run_case(&min.case, &cfg).expect("minimized case runs");
    let found = check_case(&min.case, &outcome, &cfg).classes();
    for c in &classes {
        assert!(found.contains(c), "class {c:?} lost in minimization");
    }
}

#[test]
fn diverging_case_shrinks_while_still_diverging() {
    let cfg = CoreConfig::boom();
    let tc = assemble_case(AccessPath::LoadL1Hit, CaseParams::default(), &cfg).expect("assemble");
    let opts = DiffOptions {
        fault: Some(FaultInjection::CorruptArchReg {
            at_retire: 10,
            reg: Reg::A5,
            xor: 0xFFFF,
        }),
        ..DiffOptions::default()
    };
    let mut keep = preserves_divergence(&cfg, &opts);
    assert!(keep(&tc), "the planted fault must diverge unminimized");
    let min = minimize_case(&tc, preserves_divergence(&cfg, &opts));
    assert!(
        min.final_steps < min.original_steps,
        "some scaffolding must go"
    );
    let mut keep2 = preserves_divergence(&cfg, &opts);
    assert!(keep2(&min.case), "the minimized case still diverges");
}
