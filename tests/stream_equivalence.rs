//! Streaming-vs-batch equivalence: the online [`StreamingChecker`] fed
//! from a trace sink (no trace buffering) must produce a byte-identical
//! [`CheckReport`] to the batch `check_case` pipeline, and platforms
//! forked from a copy-on-write boot snapshot must be indistinguishable
//! from freshly-built ones.

use teesec::checker::check_case;
use teesec::report::CheckReport;
use teesec::runner::{run_case, run_case_opts, RunOptions, SnapshotCache};
use teesec::stream::StreamingChecker;
use teesec::testcase::TestCase;
use teesec::Fuzzer;
use teesec_uarch::CoreConfig;

fn batch_report(tc: &TestCase, cfg: &CoreConfig) -> CheckReport {
    let outcome = run_case(tc, cfg).expect("batch build");
    check_case(tc, &outcome, cfg)
}

fn streaming_report(tc: &TestCase, cfg: &CoreConfig, cache: Option<&SnapshotCache>) -> CheckReport {
    let mut outcome = run_case_opts(
        tc,
        cfg,
        RunOptions {
            snapshot_cache: cache,
            sink: Some(Box::new(StreamingChecker::new(tc, cfg))),
            buffer_trace: false,
            ..RunOptions::default()
        },
    )
    .expect("streaming build");
    let checker = outcome
        .platform
        .core
        .trace
        .take_sink()
        .expect("sink survives the run")
        .into_any()
        .downcast::<StreamingChecker>()
        .expect("sink is the streaming checker");
    checker.finish(tc, &outcome)
}

/// The tentpole equivalence guarantee: over the full default corpus, on
/// both designs, the streaming pipeline (snapshot-forked platforms, no
/// trace buffering, online checking) serializes to the byte-identical
/// report the batch pipeline produces.
#[test]
fn streaming_reports_are_byte_identical_to_batch_on_both_designs() {
    for cfg in [CoreConfig::boom(), CoreConfig::xiangshan()] {
        let corpus = Fuzzer::paper_default().generate(&cfg);
        assert!(!corpus.is_empty());
        let cache = SnapshotCache::new();
        for tc in &corpus {
            let batch = serde_json::to_string(&batch_report(tc, &cfg)).unwrap();
            let stream = serde_json::to_string(&streaming_report(tc, &cfg, Some(&cache))).unwrap();
            assert_eq!(
                stream, batch,
                "case {} on {}: streaming report differs from batch",
                tc.name, cfg.name
            );
        }
        let m = cache.metrics();
        assert!(
            m.hits > 0,
            "corpus shares setup configurations, the cache must hit ({m:?})"
        );
        assert_eq!(
            (m.hits + m.misses + m.bypasses) as usize,
            corpus.len(),
            "every case consults the cache exactly once ({m:?})"
        );
    }
}

/// Interrupt-timing sweeps are the setup-prefix checkpoint's home turf:
/// every sibling except the first forks a platform already simulated up
/// to just before its interrupt, and the reports must still be
/// byte-identical to the batch pipeline's.
#[test]
fn irq_sweep_forks_the_setup_prefix_and_stays_byte_identical() {
    use teesec::assemble::{assemble_case, CaseParams};
    use teesec::AccessPath;

    let cfg = CoreConfig::boom();
    let sweep: Vec<TestCase> = (0..12u64)
        .map(|k| {
            let params = CaseParams {
                restricted_counters: true,
                irq_at: Some(2_000 + 37 * k),
                ..CaseParams::default()
            };
            let mut tc = assemble_case(AccessPath::HpcRead, params, &cfg).expect("sweep case");
            tc.name = format!("{}_irq{k}", tc.name);
            tc
        })
        .collect();

    let cache = SnapshotCache::new();
    for tc in &sweep {
        let batch = serde_json::to_string(&batch_report(tc, &cfg)).unwrap();
        let stream = serde_json::to_string(&streaming_report(tc, &cfg, Some(&cache))).unwrap();
        assert_eq!(stream, batch, "sweep case {}", tc.name);
    }
    let m = cache.metrics();
    assert_eq!(m.misses, 1, "one prefix capture for the family ({m:?})");
    assert_eq!(m.hits as usize, sweep.len() - 1, "siblings fork it ({m:?})");
    assert_eq!(m.bypasses, 0, "{m:?}");
}

/// Plan-coverage records are part of the equivalence contract too: over
/// the full default corpus, on both designs, the streaming checker's
/// per-case [`CaseCoverage`] must serialize byte-identically to the
/// batch pipeline's, and the campaign-level [`PlanCoverage`] matrices
/// (and residency histograms) absorbed from them must match exactly.
#[test]
fn streaming_coverage_is_byte_identical_to_batch_on_both_designs() {
    use teesec::checker::check_case_coverage;
    use teesec::PlanCoverage;

    for cfg in [CoreConfig::boom(), CoreConfig::xiangshan()] {
        let corpus = Fuzzer::paper_default().generate(&cfg);
        assert!(!corpus.is_empty());
        let cache = SnapshotCache::new();
        let mut batch_pc = PlanCoverage::for_design(&cfg);
        let mut stream_pc = PlanCoverage::for_design(&cfg);
        for tc in &corpus {
            let outcome = run_case(tc, &cfg).expect("batch build");
            let (_, batch_cov) = check_case_coverage(tc, &outcome, &cfg);

            let mut stream_outcome = run_case_opts(
                tc,
                &cfg,
                RunOptions {
                    snapshot_cache: Some(&cache),
                    sink: Some(Box::new(StreamingChecker::with_coverage(tc, &cfg))),
                    buffer_trace: false,
                    ..RunOptions::default()
                },
            )
            .expect("streaming build");
            let checker = stream_outcome
                .platform
                .core
                .trace
                .take_sink()
                .expect("sink survives the run")
                .into_any()
                .downcast::<StreamingChecker>()
                .expect("sink is the streaming checker");
            let (_, stream_cov) = checker.finish_coverage(tc, &stream_outcome);
            let stream_cov = stream_cov.expect("coverage recording was on");

            assert_eq!(
                serde_json::to_string(&stream_cov).unwrap(),
                serde_json::to_string(&batch_cov).unwrap(),
                "case {} on {}: streaming coverage differs from batch",
                tc.name,
                cfg.name
            );
            batch_pc.absorb(&tc.name, &batch_cov);
            stream_pc.absorb(&tc.name, &stream_cov);
        }
        assert_eq!(
            serde_json::to_string(&stream_pc).unwrap(),
            serde_json::to_string(&batch_pc).unwrap(),
            "{}: aggregated plan coverage differs between pipelines",
            cfg.name
        );
        assert!(batch_pc.exercised_declared() > 0, "{}", cfg.name);
        assert!(
            batch_pc.exercised_declared() < batch_pc.declared(),
            "{}: the seed corpus is expected to leave gaps",
            cfg.name
        );
    }
}

/// Snapshot-forked platforms are indistinguishable from freshly-built
/// ones: same exit, same cycle count, same microarchitectural counter
/// digest after running the very same case.
#[test]
fn snapshot_forked_platform_counters_match_fresh_build() {
    for cfg in [CoreConfig::boom(), CoreConfig::xiangshan()] {
        let corpus = Fuzzer::with_target(60).generate(&cfg);
        let cache = SnapshotCache::new();
        let mut forked_cases = 0usize;
        for tc in &corpus {
            let fresh = run_case(tc, &cfg).expect("fresh build");
            let cached = run_case_opts(
                tc,
                &cfg,
                RunOptions {
                    snapshot_cache: Some(&cache),
                    ..RunOptions::default()
                },
            )
            .expect("cached build");
            assert_eq!(cached.exit, fresh.exit, "{} on {}", tc.name, cfg.name);
            assert_eq!(cached.cycles, fresh.cycles, "{} on {}", tc.name, cfg.name);
            assert_eq!(
                cached.platform.core.counters(),
                fresh.platform.core.counters(),
                "{} on {}: counter digests must match",
                tc.name,
                cfg.name
            );
            forked_cases += 1;
        }
        assert!(forked_cases > 0);
        assert!(cache.metrics().hits > 0, "{:?}", cache.metrics());
    }
}
