//! Memory-bound guard: the streaming pipeline must not buffer the trace.
//!
//! With the `StreamingChecker` attached as a sink and buffering disabled,
//! the number of retained `TraceEvent`s stays O(boot prefix) — constant in
//! the case's cycle count — while the batch pipeline's buffer grows with
//! the run. This is the whole point of the streaming checker: checking a
//! 10x longer case must not retain 10x the events.

use teesec::checker::check_case;
use teesec::paths::AccessPath;
use teesec::runner::{run_case, run_case_opts, RunOptions, RunOutcome};
use teesec::stream::StreamingChecker;
use teesec::testcase::{Actor, Step, TestCase};
use teesec_isa::inst::MemWidth;
use teesec_uarch::CoreConfig;

/// A load-heavy host case padded with `nops` no-ops so the two variants
/// differ only in run length.
fn padded_case(name: &str, nops: u32) -> TestCase {
    let mut tc = TestCase::new(name, AccessPath::LoadL1Hit);
    for i in 0..8u64 {
        tc.push(
            Actor::Host,
            Step::Load {
                addr: 0x8030_0000 + i * 64,
                width: MemWidth::D,
            },
        );
        tc.push(Actor::Host, Step::Nops(nops));
    }
    tc
}

fn streaming_run(tc: &TestCase, cfg: &CoreConfig) -> (RunOutcome, Box<StreamingChecker>) {
    let mut outcome = run_case_opts(
        tc,
        cfg,
        RunOptions {
            sink: Some(Box::new(StreamingChecker::new(tc, cfg))),
            buffer_trace: false,
            ..RunOptions::default()
        },
    )
    .expect("streaming build");
    let checker = outcome
        .platform
        .core
        .trace
        .take_sink()
        .expect("sink survives the run")
        .into_any()
        .downcast::<StreamingChecker>()
        .expect("sink is the streaming checker");
    (outcome, checker)
}

#[test]
fn streaming_retains_constant_events_while_the_run_grows() {
    let cfg = CoreConfig::boom();
    let short = padded_case("membound_short", 16);
    let long = padded_case("membound_long", 900); // ~8k-word host region cap

    let (short_out, short_checker) = streaming_run(&short, &cfg);
    let (long_out, long_checker) = streaming_run(&long, &cfg);

    // The long case really is a much longer run, and the sink saw it all.
    assert!(
        long_out.cycles > short_out.cycles * 4,
        "long case must run much longer ({} vs {} cycles)",
        long_out.cycles,
        short_out.cycles
    );
    assert!(
        long_checker.events_seen() > short_checker.events_seen(),
        "the sink must observe the full event stream"
    );

    // ...yet the retained buffer did not grow with the run: both variants
    // hold exactly the boot prefix recorded before the sink was attached.
    let retained_short = short_out.platform.core.trace.len();
    let retained_long = long_out.platform.core.trace.len();
    assert_eq!(
        retained_long, retained_short,
        "streaming retention must be O(boot prefix), independent of run length"
    );

    // The batch pipeline, by contrast, buffers O(cycles): its long-case
    // buffer dwarfs the streaming one's.
    let batch_long = run_case(&long, &cfg).expect("batch build");
    let batch_retained = batch_long.platform.core.trace.len();
    assert!(
        batch_retained as u64 > retained_long as u64 + long_checker.events_seen() / 2,
        "batch should retain O(cycles) events (batch {batch_retained}, streaming {retained_long})"
    );

    // And despite never buffering, the streaming report matches batch.
    let batch_report = check_case(&long, &batch_long, &cfg);
    let stream_report = long_checker.finish(&long, &long_out);
    assert_eq!(
        serde_json::to_string(&stream_report).unwrap(),
        serde_json::to_string(&batch_report).unwrap(),
        "streaming report must match batch on the long case"
    );
}
