//! Provenance-tracer coverage: the reconstructed *secret write →
//! retention → observation* chains must name the right structures and
//! domains and be cycle-monotonic, for both a D-class (data) and the
//! M-class (metadata) findings.

use teesec::assemble::{assemble_case, CaseParams};
use teesec::checker::check_case;
use teesec::report::LeakClass;
use teesec::runner::run_case;
use teesec::AccessPath;
use teesec_uarch::trace::Domain;
use teesec_uarch::{CoreConfig, Structure};

fn checked(path: AccessPath, cfg: &CoreConfig) -> teesec::CheckReport {
    let tc = assemble_case(path, CaseParams::default(), cfg).expect("assemble");
    let outcome = run_case(&tc, cfg).expect("build");
    check_case(&tc, &outcome, cfg)
}

/// Every chain, whatever the class, must run forward in time with all
/// retention hops inside the window.
fn assert_monotonic(report: &teesec::CheckReport) {
    for chain in &report.provenance {
        assert!(
            chain.origin.cycle < chain.observation.cycle,
            "origin must precede observation: {chain:?}"
        );
        assert_eq!(
            chain.retention_cycles,
            chain.observation.cycle - chain.origin.cycle
        );
        for hop in &chain.retention {
            assert!(
                hop.cycle > chain.origin.cycle && hop.cycle <= chain.observation.cycle,
                "retention hop outside the window: {hop:?}"
            );
        }
    }
}

#[test]
fn d1_prefetcher_chain_names_lfb_and_enclave_owner() {
    let cfg = CoreConfig::boom();
    let report = checked(AccessPath::PrefetchNextLine, &cfg);
    let (i, finding) = report
        .findings
        .iter()
        .enumerate()
        .find(|(_, f)| f.class == Some(LeakClass::D1))
        .expect("the prefetch gadget leaks D1 on naive boom");
    let chain = report.chain_for(i).expect("D1 finding has a chain");

    assert!(chain.owner.is_enclave(), "secret owner is the enclave");
    assert_eq!(chain.observer, Domain::Untrusted);
    assert_eq!(chain.observation.structure, Some(finding.structure));
    assert_eq!(chain.origin.domain, chain.owner);
    assert!(
        chain.origin.cycle < chain.observation.cycle,
        "secret-write cycle must precede the observing access"
    );
    assert!(chain.retention_cycles > 0);
    assert_monotonic(&report);
}

#[test]
fn m1_counter_chain_tracks_trusted_accumulation() {
    let cfg = CoreConfig::boom();
    let report = checked(AccessPath::HpcRead, &cfg);
    let (i, _) = report
        .findings
        .iter()
        .enumerate()
        .find(|(_, f)| f.class == Some(LeakClass::M1))
        .expect("the HPC gadget leaks M1 on naive boom");
    let chain = report.chain_for(i).expect("M1 finding has a chain");

    assert!(
        chain.owner.is_trusted(),
        "the counted events belong to trusted execution, got {:?}",
        chain.owner
    );
    assert_eq!(chain.observer, Domain::Untrusted);
    assert_eq!(chain.origin.structure, Some(Structure::Hpc));
    assert_eq!(chain.observation.structure, Some(Structure::Hpc));
    assert!(chain.origin.cycle < chain.observation.cycle);
    assert_monotonic(&report);
}

#[test]
fn m2_btb_chain_names_the_enclave_training_write() {
    let cfg = CoreConfig::boom();
    let report = checked(AccessPath::BtbLookup, &cfg);
    let (i, finding) = report
        .findings
        .iter()
        .enumerate()
        .find(|(_, f)| f.class == Some(LeakClass::M2))
        .expect("the BTB gadget leaks M2 on naive boom");
    let chain = report.chain_for(i).expect("M2 finding has a chain");

    assert!(chain.owner.is_enclave());
    assert_eq!(chain.observer, Domain::Untrusted);
    assert_eq!(chain.origin.structure, Some(finding.structure));
    assert_eq!(
        chain.origin.pc, finding.pc,
        "origin is the training write at the finding's train PC"
    );
    assert!(chain.origin.cycle < chain.observation.cycle);
    assert_monotonic(&report);
}

#[test]
fn chains_are_deterministic_and_serializable() {
    let cfg = CoreConfig::boom();
    let a = checked(AccessPath::PrefetchNextLine, &cfg);
    let b = checked(AccessPath::PrefetchNextLine, &cfg);
    assert_eq!(a.provenance, b.provenance, "provenance is deterministic");
    assert!(!a.provenance.is_empty());

    let json = serde_json::to_string(&a).expect("serialize report");
    let back: teesec::CheckReport = serde_json::from_str(&json).expect("deserialize report");
    assert_eq!(back.provenance, a.provenance);
}

#[test]
fn every_finding_of_the_bundled_checker_gets_a_chain() {
    // The tracer promises a chain for every finding the bundled checker
    // can produce; spot-check across all default-assemblable gadgets.
    let cfg = CoreConfig::boom();
    for path in AccessPath::all() {
        let Ok(tc) = assemble_case(*path, CaseParams::default(), &cfg) else {
            continue;
        };
        let outcome = run_case(&tc, &cfg).expect("build");
        let report = check_case(&tc, &outcome, &cfg);
        assert_eq!(
            report.provenance.len(),
            report.findings.len(),
            "chainless finding in {}",
            tc.name
        );
        assert_monotonic(&report);
    }
}
