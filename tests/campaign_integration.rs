//! End-to-end campaign test: a moderate corpus on both designs must
//! reproduce the paper's Table 3 exactly — the discoveries emerge from the
//! modeled microarchitecture, not from any hard-coded expectation.

use teesec::campaign::Campaign;
use teesec::fuzz::Fuzzer;
use teesec::report::LeakClass;
use teesec_uarch::CoreConfig;

const CASES: usize = 150;

#[test]
fn boom_reproduces_table3_row() {
    let (r, _) = Campaign::new(CoreConfig::boom(), Fuzzer::with_target(CASES)).run();
    for class in [
        LeakClass::D1,
        LeakClass::D2,
        LeakClass::D3,
        LeakClass::D4,
        LeakClass::D5,
        LeakClass::D6,
        LeakClass::D7,
        LeakClass::M1,
        LeakClass::M2,
    ] {
        assert!(r.found(class), "BOOM must exhibit {class} (paper Table 3)");
    }
    assert!(!r.found(LeakClass::D8), "BOOM has no store buffer: no D8");
}

#[test]
fn xiangshan_reproduces_table3_row() {
    let (r, _) = Campaign::new(CoreConfig::xiangshan(), Fuzzer::with_target(CASES)).run();
    for class in [
        LeakClass::D4,
        LeakClass::D5,
        LeakClass::D6,
        LeakClass::D7,
        LeakClass::D8,
        LeakClass::M1,
        LeakClass::M2,
    ] {
        assert!(
            r.found(class),
            "XiangShan must exhibit {class} (paper Table 3)"
        );
    }
    assert!(!r.found(LeakClass::D1), "no L1 prefetcher: no D1 (paper)");
    assert!(!r.found(LeakClass::D2), "PTW PMP pre-check: no D2 (paper)");
    assert!(
        !r.found(LeakClass::D3),
        "MSHRs release refill data: no D3 (paper)"
    );
}

#[test]
fn all_cases_halt_within_budget() {
    for cfg in [CoreConfig::boom(), CoreConfig::xiangshan()] {
        let (r, _) = Campaign::new(cfg.clone(), Fuzzer::with_target(CASES)).run();
        let stuck: Vec<&str> = r
            .cases
            .iter()
            .filter(|c| !c.halted)
            .map(|c| c.name.as_str())
            .collect();
        assert!(
            stuck.is_empty(),
            "non-halting cases on {}: {stuck:?}",
            cfg.name
        );
    }
}

#[test]
fn campaign_timing_shape_matches_table2() {
    // Simulation dominates construction and checking — the Table 2 shape.
    let (r, _) = Campaign::new(CoreConfig::boom(), Fuzzer::with_target(60)).run();
    assert!(
        r.timing.simulate_us > r.timing.construct_us,
        "simulation ({}) must dominate construction ({})",
        r.timing.simulate_us,
        r.timing.construct_us
    );
    assert!(
        r.timing.plan_us < r.timing.simulate_us,
        "plan profiling is cheap"
    );
}

#[test]
fn reports_trace_secrets_back_to_addresses() {
    let (r, reports) = Campaign::new(CoreConfig::boom(), Fuzzer::with_target(40))
        .keep_reports()
        .run();
    assert_eq!(reports.len(), r.case_count);
    let mut traced = 0;
    for rep in &reports {
        for f in &rep.findings {
            if let Some(sec) = f.secret {
                // Every leaked secret value is the hash of its address —
                // the Fill_Enc_Mem traceability property.
                assert_eq!(sec.value, teesec::secret::secret_for(sec.addr));
                traced += 1;
            }
        }
    }
    assert!(traced > 0, "campaign must trace at least one secret back");
}

#[test]
fn hardened_reference_design_is_clean() {
    // The paper's closing claim: a design following principles P1 and P2
    // is guaranteed to mitigate all known attacks under the threat model.
    // Running the same corpus against the hardened preset must classify
    // zero leakage cases.
    let (r, _) = Campaign::new(CoreConfig::hardened_reference(), Fuzzer::with_target(CASES)).run();
    assert!(
        r.classes_found.is_empty(),
        "hardened design must verify clean, found {:?}",
        r.classes_found
    );
    assert!(
        r.cases.iter().all(|c| c.halted),
        "hardening must not break execution"
    );
}

#[test]
fn simulation_is_deterministic_across_runs() {
    // The artifact workflow depends on reproducible logs: the same test
    // case must produce a byte-identical SimLog on every run.
    use teesec::assemble::{assemble_case, CaseParams};
    use teesec::simlog::render_simlog;
    let cfg = CoreConfig::xiangshan();
    let tc = assemble_case(teesec::AccessPath::LoadL1Hit, CaseParams::default(), &cfg).unwrap();
    let a = teesec::run_case(&tc, &cfg).expect("run");
    let b = teesec::run_case(&tc, &cfg).expect("run");
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(
        render_simlog(&a.platform.core.trace),
        render_simlog(&b.platform.core.trace),
        "byte-identical logs"
    );
}

#[test]
fn campaign_results_serde_roundtrip() {
    let (r, _) = Campaign::new(CoreConfig::boom(), Fuzzer::with_target(10)).run();
    let json = serde_json::to_string(&r).expect("serialize");
    let back: teesec::CampaignResult = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.case_count, r.case_count);
    assert_eq!(back.classes_found, r.classes_found);
    assert_eq!(back.cases.len(), r.cases.len());
}
