//! Golden coverage-report regression: the structured `teesec
//! coverage-report --json` payload for a fixed-size campaign on the BOOM
//! preset is locked into a committed fixture. Any drift — a plan path
//! appearing or vanishing, a residency histogram shifting, the coverage
//! ratio moving — fails with the serialized diff.
//!
//! Regenerate after an *intentional* plan, tracker, or corpus change with:
//!
//! ```text
//! TEESEC_REGEN_FIXTURES=1 cargo test --test coverage_report_golden
//! ```

use std::path::PathBuf;

use teesec::checker::check_case_coverage;
use teesec::runner::run_case;
use teesec::{Fuzzer, PlanCoverage};
use teesec_uarch::CoreConfig;

/// Corpus size: large enough to exercise most of the declared matrix and
/// populate every residency histogram, small enough to keep the test fast.
const CORPUS: usize = 48;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/coverage_report.json")
}

/// The same aggregation the engine performs, serially and in corpus order
/// (the engine merges per-case records in `seq` order, so the result is
/// identical — `stream_equivalence` holds the two pipelines together).
fn campaign_coverage() -> PlanCoverage {
    let cfg = CoreConfig::boom();
    let corpus = Fuzzer::with_target(CORPUS).generate(&cfg);
    let mut pc = PlanCoverage::for_design(&cfg);
    for tc in &corpus {
        let outcome = run_case(tc, &cfg).expect("case builds");
        let (_, cov) = check_case_coverage(tc, &outcome, &cfg);
        pc.absorb(&tc.name, &cov);
    }
    pc
}

#[test]
fn coverage_report_matches_the_committed_fixture() {
    let report = campaign_coverage().report_json();
    let path = fixture_path();
    if std::env::var_os("TEESEC_REGEN_FIXTURES").is_some() {
        let json = serde_json::to_string_pretty(&report).unwrap();
        std::fs::write(&path, json + "\n").expect("write fixture");
        return;
    }
    let raw = std::fs::read_to_string(&path).expect(
        "coverage-report fixture missing — regenerate with \
         TEESEC_REGEN_FIXTURES=1 cargo test --test coverage_report_golden",
    );
    let golden: serde_json::Value = serde_json::from_str(&raw).expect("parse fixture");
    assert_eq!(
        serde_json::to_string_pretty(&report).unwrap(),
        serde_json::to_string_pretty(&golden).unwrap(),
        "coverage report drifted from the committed fixture. If this change \
         is intentional, regenerate with TEESEC_REGEN_FIXTURES=1 \
         cargo test --test coverage_report_golden"
    );
}

fn field<'a>(v: &'a serde_json::Value, key: &str) -> &'a serde_json::Value {
    v.get(key).unwrap_or_else(|| panic!("missing key `{key}`"))
}

fn uint(v: &serde_json::Value, key: &str) -> u64 {
    match field(v, key) {
        serde_json::Value::UInt(n) => *n as u64,
        other => panic!("`{key}` is not an unsigned integer: {other:?}"),
    }
}

/// The fixture itself must stay sane regardless of exact numbers: a
/// partially-covered declared matrix (the seed corpus leaves gaps by
/// design), at least one concrete gap entry, and nonempty per-structure
/// residency aggregates with log2 buckets.
#[test]
fn fixture_is_well_formed() {
    if std::env::var_os("TEESEC_REGEN_FIXTURES").is_some() {
        return;
    }
    let raw = std::fs::read_to_string(fixture_path()).expect("fixture present");
    let golden: serde_json::Value = serde_json::from_str(&raw).unwrap();
    assert_eq!(
        field(&golden, "design"),
        &serde_json::Value::String("boom".into())
    );
    let declared = uint(&golden, "declared_paths");
    let exercised = uint(&golden, "exercised_paths");
    let ratio = uint(&golden, "coverage_ratio_ppm");
    assert!(declared > 0);
    assert!(
        exercised > 0 && exercised < declared,
        "seed corpus leaves gaps"
    );
    assert_eq!(ratio, exercised * 1_000_000 / declared);
    let gaps = field(&golden, "gaps").as_array().unwrap();
    assert!(!gaps.is_empty(), "the gap list must name concrete paths");
    for g in gaps {
        assert!(matches!(
            field(g, "structure"),
            serde_json::Value::String(_)
        ));
        assert!(matches!(
            field(g, "transition"),
            serde_json::Value::String(_)
        ));
    }
    let residency = field(&golden, "residency").as_array().unwrap();
    assert!(!residency.is_empty(), "secrets must leave exposure windows");
    for r in residency {
        assert!(uint(r, "windows") > 0);
        assert!(!field(r, "buckets").as_array().unwrap().is_empty());
    }
}
