//! Golden-file schema test for the engine's JSONL event stream.
//!
//! The event stream is a consumer-facing interface: dashboards and CI
//! tooling parse it line by line. This test pins the serialized form of
//! every [`EngineEvent`] variant (and the [`EngineMetrics`] aggregate it
//! carries) against a committed fixture, so an accidental rename or
//! reorder shows up as a diff against `tests/fixtures/engine_events.jsonl`
//! instead of a silent downstream breakage.
//!
//! Regenerate intentionally with:
//! `TEESEC_REGEN_FIXTURES=1 cargo test --test obs_schema`

use std::collections::BTreeMap;

use teesec::coverage::{
    CaseCoverage, CellKey, DetectedCell, ObserverKind, PlanCoverage, ResidencyWindow,
    TransitionPoint,
};
use teesec::diff::DiffVerdict;
use teesec::engine::{DiffMetrics, EngineEvent, EngineMetrics, FastPathMetrics, ObsMetrics};
use teesec::report::LeakClass;
use teesec::runner::SnapshotCacheMetrics;
use teesec_obs::{Histogram, Summary};
use teesec_trace::{CriticalHop, HopKind, PhaseStat, Straggler, TraceReport, WorkerStat};
use teesec_uarch::{CoreConfig, Structure, StructureCounters, UarchCounters};

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/engine_events.jsonl"
);

fn sample_counters() -> UarchCounters {
    UarchCounters {
        cycles: 1234,
        instructions_retired: 456,
        trace_events: 78,
        counter_bumps: 9,
        domain_switches: 4,
        structures: vec![StructureCounters {
            structure: Structure::L1d,
            fills: 12,
            writes: 3,
            reads: 40,
            flushes: 1,
            occupancy_at_exit: 7,
            capacity: 64,
        }],
    }
}

fn sample_report() -> TraceReport {
    TraceReport {
        wall_us: 9876,
        cases: 3,
        critical_worker: 1,
        critical_path_us: 9000,
        critical_path: vec![CriticalHop {
            kind: HopKind::Case,
            name: "exp_load_l1_hit__case".into(),
            start_us: 0,
            dur_us: 9000,
            dominant_phase: "simulate".into(),
        }],
        phases: vec![PhaseStat {
            phase: "simulate".into(),
            total_us: 7000,
            summary: Summary {
                count: 3,
                sum: 7000,
                min: 1000,
                max: 4000,
                p50: 2000,
                p90: 4000,
                p99: 4000,
            },
        }],
        workers: vec![WorkerStat {
            worker: 1,
            cases: 2,
            busy_us: 9000,
            idle_us: 876,
            busy_ratio_ppm: 911_300,
            starved_intervals: 0,
            starved_us: 0,
        }],
        stragglers: vec![Straggler {
            case: "exp_load_l1_hit__case".into(),
            seq: 0,
            worker: 1,
            dur_us: 5000,
            phase_us: vec![("simulate".into(), 4000)],
        }],
    }
}

fn sample_coverage() -> CaseCoverage {
    let cell = CellKey {
        structure: Structure::L1d,
        transition: TransitionPoint::MonitorReturn,
        observer: ObserverKind::Host,
    };
    CaseCoverage {
        exercised: vec![cell],
        detected: vec![DetectedCell {
            cell,
            classes: vec![LeakClass::D2],
        }],
        residency: vec![ResidencyWindow {
            structure: Structure::L1d,
            secret_addr: 0x8021_0000,
            start_cycle: 100,
            end_cycle: 1200,
        }],
    }
}

fn sample_plan_coverage() -> PlanCoverage {
    let mut pc = PlanCoverage {
        design: "boom".into(),
        cells: Vec::new(),
        residency: Vec::new(),
        cases_recorded: 0,
    };
    pc.absorb("exp_load_l1_hit__case", &sample_coverage());
    pc
}

fn sample_metrics() -> EngineMetrics {
    let mut obs = ObsMetrics::for_design(&CoreConfig::boom());
    obs.record_case(1234, 150, 2000, 300);
    obs.uarch.absorb(&sample_counters());
    let mut h = Histogram::new();
    h.record(42);
    EngineMetrics {
        threads: 2,
        cases_total: 3,
        cases_quarantined: 1,
        cases_budget_exceeded: 0,
        findings_total: 5,
        findings_by_structure: BTreeMap::from([("L1D-cache".to_string(), 5)]),
        cases_per_worker: vec![2, 1],
        wall_us: 9876,
        obs: Some(obs),
        diff: Some(DiffMetrics {
            cases_compared: 2,
            matches: 1,
            divergences: 0,
            skipped: 1,
            retires_compared: 400,
        }),
        snapshot: Some(SnapshotCacheMetrics {
            hits: 2,
            misses: 1,
            bypasses: 0,
            capture_us: 4200,
        }),
        trace: Some(sample_report()),
        plan_coverage: Some(sample_plan_coverage()),
        fastpath: Some(FastPathMetrics {
            cases: 2,
            decode_hits: 5000,
            decode_misses: 700,
            decode_invalidations: 3,
            scan_checks: 900,
            scan_skips: 2100,
        }),
    }
}

/// One deterministic instance of every event variant, in stream order.
fn sample_events() -> Vec<EngineEvent> {
    vec![
        EngineEvent::CampaignStarted {
            design: "boom".into(),
            case_count: 3,
            threads: 2,
        },
        EngineEvent::CaseStarted {
            seq: 0,
            case: "exp_load_l1_hit__case".into(),
            worker: 1,
            span_id: Some(3),
            parent_id: Some(2),
        },
        EngineEvent::CaseFinished {
            seq: 0,
            case: "exp_load_l1_hit__case".into(),
            cycles: 1234,
            halted: true,
            finding_count: 5,
            findings_by_structure: BTreeMap::from([("L1D-cache".to_string(), 5)]),
            build_us: 150,
            simulate_us: 2000,
            check_us: 300,
            span_id: Some(3),
            parent_id: Some(2),
        },
        EngineEvent::CaseCounters {
            seq: 0,
            case: "exp_load_l1_hit__case".into(),
            counters: sample_counters(),
            span_id: Some(3),
            parent_id: Some(2),
        },
        EngineEvent::CaseDiff {
            seq: 0,
            case: "exp_load_l1_hit__case".into(),
            verdict: DiffVerdict::Match {
                retires: 400,
                cycles: 1234,
            },
            span_id: Some(3),
            parent_id: Some(2),
        },
        EngineEvent::CaseCoverage {
            seq: 0,
            case: "exp_load_l1_hit__case".into(),
            coverage: sample_coverage(),
            span_id: Some(3),
            parent_id: Some(2),
        },
        EngineEvent::CaseQuarantined {
            seq: 1,
            case: "broken__case".into(),
            error: "build error: region overflow".into(),
            span_id: None,
            parent_id: Some(2),
        },
        EngineEvent::CampaignFinished {
            metrics: sample_metrics(),
        },
    ]
}

#[test]
fn event_stream_schema_matches_committed_fixture() {
    let events = sample_events();
    let rendered: String = events
        .iter()
        .map(|e| serde_json::to_string(e).expect("serialize") + "\n")
        .collect();

    if std::env::var_os("TEESEC_REGEN_FIXTURES").is_some() {
        std::fs::write(FIXTURE, &rendered).expect("write fixture");
        return;
    }

    let fixture = std::fs::read_to_string(FIXTURE)
        .expect("fixture missing — regenerate with TEESEC_REGEN_FIXTURES=1");
    let fixture_lines: Vec<&str> = fixture.lines().collect();
    assert_eq!(
        fixture_lines.len(),
        events.len(),
        "one fixture line per EngineEvent variant"
    );
    for (event, line) in events.iter().zip(&fixture_lines) {
        let serialized = serde_json::to_string(event).expect("serialize");
        assert_eq!(
            &serialized, line,
            "serialized form drifted from the committed schema"
        );
        let back: EngineEvent = serde_json::from_str(line).expect("fixture line deserializes");
        assert_eq!(&back, event, "round-trip changed the event");
    }
}

#[test]
fn every_variant_is_covered_by_the_fixture() {
    // If a new variant is added to EngineEvent, this match stops
    // compiling until sample_events() (and thus the fixture) covers it.
    for event in sample_events() {
        match event {
            EngineEvent::CampaignStarted { .. }
            | EngineEvent::CaseStarted { .. }
            | EngineEvent::CaseFinished { .. }
            | EngineEvent::CaseCounters { .. }
            | EngineEvent::CaseDiff { .. }
            | EngineEvent::CaseCoverage { .. }
            | EngineEvent::CaseQuarantined { .. }
            | EngineEvent::CampaignFinished { .. } => {}
        }
    }
    let names = [
        "CampaignStarted",
        "CaseStarted",
        "CaseFinished",
        "CaseCounters",
        "CaseDiff",
        "CaseCoverage",
        "CaseQuarantined",
        "CampaignFinished",
    ];
    let rendered: Vec<String> = sample_events()
        .iter()
        .map(|e| serde_json::to_string(e).unwrap())
        .collect();
    for (name, line) in names.iter().zip(&rendered) {
        assert!(line.contains(name), "{name} missing from {line}");
    }
}

#[test]
fn engine_metrics_roundtrip_preserves_obs() {
    let metrics = sample_metrics();
    let json = serde_json::to_string(&metrics).expect("serialize");
    let back: EngineMetrics = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, metrics);
    let obs = back.obs.expect("obs survived");
    assert_eq!(obs.case_cycles.count(), 1);
    assert_eq!(obs.uarch.cycles, 1234);
    assert_eq!(
        obs.uarch.structure(Structure::L1d).map(|s| s.fills),
        Some(12)
    );
}

#[test]
fn engine_metrics_without_obs_still_parse() {
    // Backward compatibility: PR-1-era metrics JSON had no `obs` field;
    // the serde shim maps an absent Option field to None, so old event
    // streams keep parsing.
    let legacy = r#"{"threads":2,"cases_total":3,"cases_quarantined":1,
        "cases_budget_exceeded":0,"findings_total":5,
        "findings_by_structure":{"L1D-cache":5},
        "cases_per_worker":[2,1],"wall_us":9876}"#;
    let back: EngineMetrics = serde_json::from_str(legacy).expect("legacy metrics parse");
    assert_eq!(back.obs, None);
    assert_eq!(
        back.diff, None,
        "pre-diff-era metrics parse with diff: None"
    );
    assert_eq!(
        back.snapshot, None,
        "pre-snapshot-era metrics parse with snapshot: None"
    );
    assert_eq!(
        back.trace, None,
        "pre-tracing-era metrics parse with trace: None"
    );
    assert_eq!(
        back.plan_coverage, None,
        "pre-coverage-era metrics parse with plan_coverage: None"
    );
    assert_eq!(
        back.fastpath, None,
        "pre-fastpath-era metrics parse with fastpath: None"
    );
    assert_eq!(back.cases_total, 3);

    // Pre-tracing event lines (no span_id/parent_id) keep parsing too.
    let legacy_event = r#"{"CaseStarted":{"seq":0,"case":"c","worker":1}}"#;
    let back: EngineEvent = serde_json::from_str(legacy_event).expect("legacy event parses");
    assert_eq!(
        back,
        EngineEvent::CaseStarted {
            seq: 0,
            case: "c".into(),
            worker: 1,
            span_id: None,
            parent_id: None,
        }
    );

    // And an explicit null round-trips to None too.
    let mut metrics = sample_metrics();
    metrics.obs = None;
    let json = serde_json::to_string(&metrics).expect("serialize");
    let back: EngineMetrics = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.obs, None);
}
