//! End-to-end locks on the live-telemetry layer: the embedded HTTP
//! exposition (`--serve`), SSE event streaming with `Last-Event-ID`
//! resume, the `/status` progress document, and crash-durable
//! checkpointing.
//!
//! The headline invariant is byte identity: the last `/metrics` scrape of
//! a served campaign and the `--metrics-out` file it writes on exit must
//! be the same bytes, so a Prometheus server that scraped the run and a
//! script that reads the file can never disagree.
//!
//! Regenerate the `/status` schema fixture intentionally with:
//! `TEESEC_REGEN_FIXTURES=1 cargo test --test telemetry_integration`

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use serde_json::Value;
use teesec::campaign::{Campaign, PhaseTiming};
use teesec::engine::{Engine, EngineOptions};
use teesec::fuzz::Fuzzer;
use teesec::live_campaign_snapshot;
use teesec_obs::PROMETHEUS_CONTENT_TYPE;
use teesec_telemetry::{serve, MetricsHub};
use teesec_trace::Tracer;
use teesec_uarch::CoreConfig;

const STATUS_SCHEMA_FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/status_schema.json"
);

/// A blocking one-shot HTTP GET; returns (status line, headers, body).
fn http_get(addr: &str, target: &str, extra_headers: &str) -> (String, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to telemetry server");
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nHost: test\r\n{extra_headers}\r\n"
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("header terminator");
    let (status, headers) = head.split_once("\r\n").unwrap_or((head, ""));
    (status.to_string(), headers.to_string(), body.to_string())
}

/// Polls `target` until it answers 200 (or the deadline passes).
fn poll_get_ok(addr: &str, target: &str, timeout: Duration) -> (String, String, String) {
    let deadline = Instant::now() + timeout;
    loop {
        let response = http_get(addr, target, "");
        if response.0.contains("200") {
            return response;
        }
        assert!(
            Instant::now() < deadline,
            "{target} never answered 200; last: {}",
            response.0
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// A fresh per-test scratch directory under the system temp dir.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("teesec-telemetry-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn teesec_bin() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_teesec"));
    cmd.stdout(Stdio::piped()).stderr(Stdio::null());
    cmd
}

/// Reads the child's stdout line by line until `marker` appears,
/// returning that line. Panics if stdout closes first.
fn wait_for_line(reader: &mut BufReader<&mut std::process::ChildStdout>, marker: &str) -> String {
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read child stdout");
        assert!(n > 0, "child exited before printing `{marker}`");
        if line.contains(marker) {
            return line;
        }
    }
}

fn kill_and_reap(mut child: Child) {
    let _ = child.kill();
    let _ = child.wait();
}

// ---------------------------------------------------------------------------
// In-process: mid-flight scrapes and final byte identity.
// ---------------------------------------------------------------------------

#[test]
fn mid_flight_scrapes_observe_the_campaign_then_its_completion() {
    let hub = MetricsHub::default();
    let server = serve(hub.clone(), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr().to_string();

    // Before the campaign attaches, artifact endpoints answer 503 and
    // /health reports the producer down.
    assert!(http_get(&addr, "/metrics", "").0.contains("503"));
    assert!(http_get(&addr, "/status", "").0.contains("503"));
    assert!(http_get(&addr, "/health", "").2.contains("\"up\":false"));

    let run = {
        let hub = hub.clone();
        std::thread::spawn(move || {
            Campaign::new(CoreConfig::boom(), Fuzzer::with_target(800)).run_engine(EngineOptions {
                threads: 2,
                counters: true,
                coverage: true,
                telemetry: Some(hub),
                ..EngineOptions::default()
            })
        })
    };

    // The engine publishes an initial (empty) exposition before spawning
    // workers, so the first 200 lands mid-flight with the campaign still
    // incomplete.
    let (_, headers, body) = poll_get_ok(&addr, "/metrics", Duration::from_secs(30));
    assert!(
        headers.contains(&format!("Content-Type: {PROMETHEUS_CONTENT_TYPE}")),
        "{headers}"
    );
    assert!(body.contains("teesec_up 1"), "{body}");
    assert!(body.contains("teesec_campaign_progress_ratio"), "{body}");
    assert!(body.contains("teesec_events_dropped_total"), "{body}");

    let (_, _, status) = poll_get_ok(&addr, "/status", Duration::from_secs(30));
    let doc = serde_json::parse_value(&status).expect("status parses");
    assert_eq!(doc.get("complete"), Some(&Value::Bool(false)), "{status}");
    assert_eq!(doc.get("cases_total"), Some(&Value::UInt(800)), "{status}");
    assert!(http_get(&addr, "/health", "").2.contains("\"up\":true"));

    let (result, _) = run.join().expect("campaign thread");

    // The final live scrape is byte-identical to the rendering the
    // end-of-run path produces from the returned result.
    let (_, _, final_scrape) = poll_get_ok(&addr, "/metrics", Duration::from_secs(5));
    let expected =
        live_campaign_snapshot(&result, 1_000_000, hub.events_dropped_total()).render_prometheus();
    assert_eq!(
        final_scrape, expected,
        "final scrape drifted from the snapshot rendering"
    );

    let (_, _, status) = poll_get_ok(&addr, "/status", Duration::from_secs(5));
    let doc = serde_json::parse_value(&status).expect("final status parses");
    assert_eq!(doc.get("complete"), Some(&Value::Bool(true)), "{status}");
    assert_eq!(doc.get("cases_done"), doc.get("cases_total"), "{status}");
    assert_eq!(doc.get("eta_us"), Some(&Value::UInt(0)), "{status}");

    // Coverage was on, so the live report is being served too.
    let (_, _, coverage) = poll_get_ok(&addr, "/coverage", Duration::from_secs(5));
    serde_json::parse_value(&coverage).expect("coverage report parses");
}

// ---------------------------------------------------------------------------
// Subprocess: --serve end to end, scrape-vs-file byte identity.
// ---------------------------------------------------------------------------

#[test]
fn final_scrape_matches_the_metrics_out_file_on_both_designs() {
    let dir = scratch_dir("identity");
    for design in ["boom", "xiangshan"] {
        let out = dir.join(format!("{design}.prom"));
        let out_str = out.to_str().expect("utf-8 path");
        let mut child = teesec_bin()
            .args([
                "campaign",
                "--design",
                design,
                "--cases",
                "585",
                "--threads",
                "4",
                "--quiet",
                "--metrics-out",
                out_str,
                "--serve",
                "127.0.0.1:0",
                "--serve-linger",
                "60",
            ])
            .spawn()
            .expect("spawn teesec campaign");
        let mut stdout = child.stdout.take().expect("piped stdout");
        let mut reader = BufReader::new(&mut stdout);

        let serving = wait_for_line(&mut reader, "telemetry: serving on http://");
        let addr = serving
            .trim()
            .rsplit("http://")
            .next()
            .expect("address after scheme")
            .to_string();
        // The linger message prints after the metrics file is written and
        // the final exposition published, so scraping now is post-final.
        wait_for_line(&mut reader, "telemetry: lingering");

        let (status, headers, scrape) = http_get(&addr, "/metrics", "");
        assert!(status.contains("200"), "{design}: {status}");
        assert!(
            headers.contains(&format!("Content-Type: {PROMETHEUS_CONTENT_TYPE}")),
            "{design}: {headers}"
        );
        let file = std::fs::read_to_string(&out).expect("metrics-out file");
        assert_eq!(
            scrape, file,
            "{design}: final /metrics scrape is not byte-identical to {out_str}"
        );
        assert!(scrape.contains(&format!("design=\"{design}\"")), "{design}");
        assert!(
            scrape.contains("teesec_campaign_progress_ratio"),
            "{design}"
        );

        // The JSON sibling of a *finished* run carries no partial marker.
        let json = std::fs::read_to_string(format!("{out_str}.json")).expect("json sibling");
        assert!(
            !json.contains("\"partial\""),
            "finished snapshot marked partial"
        );
        serde_json::parse_value(&json).expect("json sibling parses");

        kill_and_reap(child);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// SSE: resume, completion drain, and drop accounting.
// ---------------------------------------------------------------------------

#[test]
fn sse_stream_resumes_after_last_event_id_and_ends_on_completion() {
    let hub = MetricsHub::default();
    let (_, _) =
        Campaign::new(CoreConfig::boom(), Fuzzer::with_target(10)).run_engine(EngineOptions {
            threads: 2,
            telemetry: Some(hub.clone()),
            ..EngineOptions::default()
        });
    assert!(hub.complete(), "engine marks the hub complete");

    let server = serve(hub.clone(), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr().to_string();
    let (status, headers, body) = http_get(&addr, "/events", "Last-Event-ID: 3\r\n");
    assert!(status.contains("200"), "{status}");
    assert!(headers.contains("text/event-stream"), "{headers}");
    assert!(
        !body.contains("id: 1\n"),
        "resume replayed event 1:\n{body}"
    );
    assert!(
        !body.contains("id: 3\n"),
        "resume replayed event 3:\n{body}"
    );
    assert!(body.contains("id: 4\n"), "{body}");
    assert!(body.contains("CampaignFinished"), "{body}");
    assert!(
        body.ends_with("event: end\ndata: campaign complete\n\n"),
        "{body}"
    );

    // Every data line is one parseable engine event.
    for line in body.lines().filter_map(|l| l.strip_prefix("data: ")) {
        if line != "campaign complete" {
            serde_json::parse_value(line).expect("SSE data line parses as JSON");
        }
    }
}

#[test]
fn slow_subscriber_evictions_count_into_the_dropped_total() {
    // A tiny ring plus a subscriber that never reads: per-case events
    // overrun its cursor and every eviction lands in the counter.
    let hub = MetricsHub::new(4);
    let _lagger = hub.subscribe(None);
    let (_, _) =
        Campaign::new(CoreConfig::boom(), Fuzzer::with_target(16)).run_engine(EngineOptions {
            threads: 2,
            telemetry: Some(hub.clone()),
            ..EngineOptions::default()
        });
    let dropped = hub.events_dropped_total();
    assert!(dropped > 0, "lagging subscriber saw no evictions");

    // The final exposition carries the counter with a non-zero value.
    let exposition = hub.metrics().expect("final exposition published");
    let sample = exposition
        .lines()
        .find_map(|l| l.strip_prefix("teesec_events_dropped_total "))
        .expect("dropped-events sample in the exposition");
    assert!(
        sample.trim().parse::<u64>().expect("numeric sample") > 0,
        "exposition reports zero drops despite {dropped}"
    );

    // Resuming past the evicted window surfaces one gap record.
    let server = serve(hub.clone(), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr().to_string();
    let (_, _, body) = http_get(&addr, "/events?last_id=1", "");
    assert!(body.contains("event: gap\n"), "{body}");
    assert!(body.contains("event: end"), "{body}");
}

// ---------------------------------------------------------------------------
// /status golden schema.
// ---------------------------------------------------------------------------

/// Collapses a JSON value into its type shape: scalars become type-name
/// strings, arrays keep one element schema, objects keep their key order.
fn schema_of(value: &Value) -> Value {
    match value {
        Value::Null => Value::String("null".into()),
        Value::Bool(_) => Value::String("bool".into()),
        Value::UInt(_) | Value::Int(_) | Value::Float(_) => Value::String("number".into()),
        Value::String(_) => Value::String("string".into()),
        Value::Array(items) => Value::Array(items.first().map(schema_of).into_iter().collect()),
        Value::Object(pairs) => Value::Object(
            pairs
                .iter()
                .map(|(k, v)| (k.clone(), schema_of(v)))
                .collect(),
        ),
    }
}

/// Compares a live schema against the committed one. A live `"null"`
/// matches any committed shape (optional aggregates — e.g. `fastpath`
/// under `TEESEC_FASTPATH=0` — render as `null` when their producer is
/// off), and an empty live array matches a committed one-element array.
fn assert_schema_matches(expected: &Value, actual: &Value, path: &str) {
    if actual == &Value::String("null".into()) && expected != actual {
        return;
    }
    match (expected, actual) {
        (Value::Object(exp), Value::Object(act)) => {
            let exp_keys: Vec<&String> = exp.iter().map(|(k, _)| k).collect();
            let act_keys: Vec<&String> = act.iter().map(|(k, _)| k).collect();
            assert_eq!(exp_keys, act_keys, "{path}: key set or order drifted");
            for ((k, e), (_, a)) in exp.iter().zip(act) {
                assert_schema_matches(e, a, &format!("{path}.{k}"));
            }
        }
        (Value::Array(exp), Value::Array(act)) => {
            if let (Some(e), Some(a)) = (exp.first(), act.first()) {
                assert_schema_matches(e, a, &format!("{path}[]"));
            }
        }
        _ => assert_eq!(expected, actual, "{path}: schema drifted"),
    }
}

#[test]
fn status_document_matches_the_committed_schema() {
    let hub = MetricsHub::default();
    let (_, _) =
        Campaign::new(CoreConfig::boom(), Fuzzer::with_target(8)).run_engine(EngineOptions {
            threads: 2,
            counters: true,
            diff: Some(teesec::diff::DiffOptions::default()),
            streaming: true,
            snapshot_cache: true,
            coverage: true,
            tracer: Tracer::new(2),
            telemetry: Some(hub.clone()),
            ..EngineOptions::default()
        });
    let status = hub.status().expect("status published");
    let doc = serde_json::parse_value(&status).expect("status parses");
    let schema = schema_of(&doc);
    let rendered = serde_json::to_string_pretty(&schema).expect("render schema") + "\n";

    if std::env::var_os("TEESEC_REGEN_FIXTURES").is_some() {
        std::fs::write(STATUS_SCHEMA_FIXTURE, &rendered).expect("write fixture");
        return;
    }

    let fixture = std::fs::read_to_string(STATUS_SCHEMA_FIXTURE)
        .expect("fixture missing — regenerate with TEESEC_REGEN_FIXTURES=1");
    let expected = serde_json::parse_value(&fixture).expect("fixture parses");
    assert_schema_matches(&expected, &schema, "status");

    // Semantics of the final document, beyond shape.
    assert_eq!(doc.get("complete"), Some(&Value::Bool(true)));
    assert_eq!(doc.get("cases_done"), doc.get("cases_total"));
    assert_eq!(doc.get("eta_us"), Some(&Value::UInt(0)));
    assert_eq!(doc.get("progress_ppm"), Some(&Value::UInt(1_000_000)));
    let phases = doc.get("phases").and_then(Value::as_array).expect("phases");
    assert!(
        !phases.is_empty(),
        "counters were on; phases must be present"
    );
    let workers = doc
        .get("workers")
        .and_then(Value::as_array)
        .expect("workers");
    assert_eq!(workers.len(), 2, "one row per tracer worker");
}

// ---------------------------------------------------------------------------
// Crash durability: SIGKILL mid-campaign.
// ---------------------------------------------------------------------------

#[test]
fn sigkill_mid_campaign_leaves_parseable_partial_artifacts() {
    let dir = scratch_dir("sigkill");
    let out = dir.join("checkpoint.prom");
    let out_str = out.to_str().expect("utf-8 path");
    let events = dir.join("events.jsonl");
    let events_str = events.to_str().expect("utf-8 path");
    let json_path = format!("{out_str}.json");

    // A corpus far larger than the first checkpoint threshold, so the
    // kill below is guaranteed to land mid-flight.
    let mut child = teesec_bin()
        .args([
            "campaign",
            "--design",
            "boom",
            "--cases",
            "5000",
            "--threads",
            "2",
            "--quiet",
            "--metrics-out",
            out_str,
            "--checkpoint-every",
            "20",
            "--events",
            events_str,
        ])
        .spawn()
        .expect("spawn teesec campaign");

    let deadline = Instant::now() + Duration::from_secs(120);
    while !std::path::Path::new(&json_path).exists() {
        assert!(
            Instant::now() < deadline,
            "no checkpoint appeared before the deadline"
        );
        assert!(
            child.try_wait().expect("poll child").is_none(),
            "campaign finished before any checkpoint was observed"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    kill_and_reap(child);

    // The checkpointed JSON snapshot parses and is explicitly marked
    // partial — as the first member, so even a `head -2` shows it.
    let json = std::fs::read_to_string(&json_path).expect("checkpoint json");
    let doc = serde_json::parse_value(&json).expect("partial snapshot parses");
    let members = doc.as_object().expect("snapshot object");
    assert_eq!(
        members.first().map(|(k, v)| (k.as_str(), v)),
        Some(("partial", &Value::Bool(true))),
        "checkpoint must lead with the partial marker"
    );

    // The Prometheus checkpoint is a complete, well-formed exposition
    // (atomic rename means no torn files at the published path).
    let prom = std::fs::read_to_string(&out).expect("checkpoint prom");
    assert!(prom.ends_with('\n'), "torn exposition");
    for line in prom.lines() {
        if !line.starts_with('#') && !line.is_empty() {
            let value = line.rsplit(' ').next().expect("sample value");
            value
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("torn sample: {line}"));
        }
    }
    assert!(prom.contains("teesec_campaign_progress_ratio"), "{prom}");

    // The JSONL event stream is resumable: every complete line parses
    // (the final line may be torn by the kill — that one alone may fail).
    let stream = std::fs::read_to_string(&events).expect("events file");
    let lines: Vec<&str> = stream.lines().collect();
    assert!(!lines.is_empty(), "no events recorded before the kill");
    assert!(lines[0].contains("CampaignStarted"), "{}", lines[0]);
    for (i, line) in lines.iter().enumerate() {
        if serde_json::parse_value(line).is_err() {
            assert_eq!(
                i,
                lines.len() - 1,
                "only the final (torn) line may fail to parse: line {i}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Overhead guard: serving plus a live scraper must stay a bounded tax.
// ---------------------------------------------------------------------------

#[test]
fn serving_with_a_live_scraper_stays_a_bounded_tax() {
    // Loose bound on purpose — CI machines are noisy; this catches a
    // pathological regression (e.g. rendering under the fold lock), not
    // the 2% figure, which `cargo bench -p teesec-bench` (telemetry
    // bench) and BENCH_pr10.json track.
    let cfg = CoreConfig::boom();
    let corpus = Fuzzer::with_target(200).generate(&cfg);
    let _ = Engine::new(cfg.clone(), EngineOptions::default())
        .run_corpus(&corpus[..2], PhaseTiming::default());

    let t0 = Instant::now();
    let (plain, _) = Engine::new(cfg.clone(), EngineOptions::default())
        .run_corpus(&corpus, PhaseTiming::default());
    let plain_us = t0.elapsed().as_micros();

    let hub = MetricsHub::default();
    let server = serve(hub.clone(), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr().to_string();
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let scraper = {
        let (addr, stop) = (addr.clone(), stop.clone());
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let _ = http_get(&addr, "/metrics", "");
                let _ = http_get(&addr, "/status", "");
                std::thread::sleep(Duration::from_millis(50));
            }
        })
    };

    let t1 = Instant::now();
    let (served, _) = Engine::new(
        cfg,
        EngineOptions {
            telemetry: Some(hub.clone()),
            ..EngineOptions::default()
        },
    )
    .run_corpus(&corpus, PhaseTiming::default());
    let served_us = t1.elapsed().as_micros();
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    scraper.join().expect("scraper thread");

    assert_eq!(plain.case_count, served.case_count);
    assert_eq!(plain.classes_found, served.classes_found);
    let bound = plain_us * 3 + 500_000;
    assert!(
        served_us <= bound,
        "served engine took {served_us}us vs {plain_us}us plain (bound {bound}us) — \
         live-telemetry overhead regressed"
    );
}
