//! Fault-isolation regression: one poisoned `TestCase` must not take down
//! a campaign. The engine (and the serial reference) quarantine the broken
//! case into `CaseResult::error` and keep reporting healthy classes.

use teesec::campaign::PhaseTiming;
use teesec::engine::{Engine, EngineOptions};
use teesec::fuzz::Fuzzer;
use teesec::testcase::Step;
use teesec_uarch::CoreConfig;

/// An otherwise-valid corpus with two broken cases spliced in:
/// one that cannot build (code overflows the host region) and one that
/// panics during lowering (branch offset already passed).
fn poisoned_corpus(cfg: &CoreConfig) -> Vec<teesec::TestCase> {
    let mut corpus = Fuzzer::with_target(12).generate(cfg);

    let mut unbuildable = corpus[0].clone();
    unbuildable.name = "injected_unbuildable".into();
    // 100k nops = 400 KiB of code against a 64 KiB host region.
    unbuildable.host_steps = vec![Step::Nops(100_000)];
    corpus.insert(3, unbuildable);

    let mut panicking = corpus[0].clone();
    panicking.name = "injected_panicking".into();
    // The cursor is far beyond offset 8 by the time the branch is placed.
    panicking.host_steps = vec![
        Step::Nops(100),
        Step::BranchAtOffset {
            offset: 8,
            taken: true,
        },
    ];
    corpus.insert(7, panicking);

    corpus
}

#[test]
fn engine_quarantines_broken_cases_and_finishes() {
    let cfg = CoreConfig::boom();
    let corpus = poisoned_corpus(&cfg);
    let opts = EngineOptions {
        threads: 3,
        ..EngineOptions::default()
    };
    let (result, _) = Engine::new(cfg.clone(), opts).run_corpus(&corpus, PhaseTiming::default());

    // The campaign ran to completion: every case, healthy or not, reported.
    assert_eq!(result.case_count, corpus.len());

    // Exactly the two injected cases were quarantined, with telling errors.
    let quarantined: Vec<_> = result.quarantined_cases().collect();
    assert_eq!(quarantined.len(), 2, "quarantined: {quarantined:?}");
    let by_name = |n: &str| quarantined.iter().find(|c| c.name == n).unwrap();
    let unbuildable = by_name("injected_unbuildable");
    assert!(
        unbuildable
            .error
            .as_deref()
            .unwrap()
            .contains("build error"),
        "got: {:?}",
        unbuildable.error
    );
    let panicking = by_name("injected_panicking");
    assert!(
        panicking.error.as_deref().unwrap().contains("panic"),
        "got: {:?}",
        panicking.error
    );
    for c in &quarantined {
        assert_eq!(c.cycles, 0);
        assert!(!c.halted);
        assert_eq!(c.finding_count, 0);
        assert!(c.classes.is_empty());
    }

    // Metrics agree, and the healthy majority still found leaks.
    let metrics = result.engine.as_ref().unwrap();
    assert_eq!(metrics.cases_quarantined, 2);
    assert_eq!(metrics.cases_total, corpus.len());
    assert!(
        !result.classes_found.is_empty(),
        "healthy cases must still report leak classes"
    );
    assert!(result
        .cases
        .iter()
        .filter(|c| c.error.is_none())
        .all(|c| c.halted));
}

#[test]
fn corpus_order_is_preserved_around_quarantined_cases() {
    let cfg = CoreConfig::boom();
    let corpus = poisoned_corpus(&cfg);
    let opts = EngineOptions {
        threads: 4,
        ..EngineOptions::default()
    };
    let (result, _) = Engine::new(cfg, opts).run_corpus(&corpus, PhaseTiming::default());
    let expected: Vec<_> = corpus.iter().map(|tc| tc.name.as_str()).collect();
    let got: Vec<_> = result.cases.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(got, expected);
    assert_eq!(result.cases[3].name, "injected_unbuildable");
    assert_eq!(result.cases[7].name, "injected_panicking");
}
