//! End-to-end correctness of the span-tracing pipeline:
//!
//! * a traced engine run produces a **well-nested** span tree (every
//!   child's interval lies inside its parent's, case spans on one worker
//!   never overlap) whose case span ids join 1:1 against the JSONL event
//!   stream's `span_id` fields;
//! * the Chrome/Perfetto export is loadable (valid JSON, `traceEvents`
//!   array, process-name metadata) and round-trips through
//!   [`Trace::from_chrome_json`] losslessly;
//! * the serialized trace shape is pinned by a golden fixture built from
//!   a handcrafted deterministic [`Trace`] (real runs have
//!   nondeterministic timestamps — stable fields only);
//! * a **disabled** tracer is a no-op cheap enough to leave compiled into
//!   every pipeline phase, and an enabled one stays a bounded tax.
//!
//! Regenerate the fixture intentionally with:
//! `TEESEC_REGEN_FIXTURES=1 cargo test --test trace_integration`

use std::collections::BTreeSet;
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use proptest::prelude::*;

use teesec::campaign::PhaseTiming;
use teesec::engine::{Engine, EngineEvent, EngineOptions, EventSink};
use teesec::fuzz::Fuzzer;
use teesec_trace::{ArgValue, Mark, Span, Trace, Tracer};
use teesec_uarch::CoreConfig;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/trace_perfetto.json"
);

struct SharedBuf(Arc<Mutex<Vec<u8>>>);
impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Runs a traced engine over `cases` fuzzer cases on `threads` workers,
/// returning the recorded trace, the JSONL event text, and the result.
fn traced_run(
    threads: usize,
    cases: usize,
    counters: bool,
) -> (Trace, String, teesec::CampaignResult) {
    let cfg = CoreConfig::boom();
    let corpus = Fuzzer::with_target(cases).generate(&cfg);
    let buf = Arc::new(Mutex::new(Vec::new()));
    let tracer = Tracer::new(threads.max(1));
    let (result, _) = Engine::new(
        cfg,
        EngineOptions {
            threads,
            counters,
            streaming: true,
            snapshot_cache: true,
            events: Some(EventSink::new(SharedBuf(buf.clone()))),
            tracer: tracer.clone(),
            ..EngineOptions::default()
        },
    )
    .run_corpus(&corpus, PhaseTiming::default());
    let events = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
    (tracer.snapshot(), events, result)
}

/// Asserts the structural invariants every recorded trace must satisfy.
fn assert_well_nested(trace: &Trace) {
    let mut ids = BTreeSet::new();
    for s in &trace.spans {
        assert!(s.id != 0, "span ids start at 1");
        assert!(ids.insert(s.id), "duplicate span id {}", s.id);
    }
    let by_id = |id: u64| trace.spans.iter().find(|s| s.id == id);
    for s in &trace.spans {
        if s.parent == 0 {
            continue;
        }
        let p = by_id(s.parent)
            .unwrap_or_else(|| panic!("span {} has dangling parent {}", s.id, s.parent));
        assert!(
            s.start_us >= p.start_us && s.end_us() <= p.end_us(),
            "child {} [{}, {}] escapes parent {} [{}, {}]",
            s.name,
            s.start_us,
            s.end_us(),
            p.name,
            p.start_us,
            p.end_us()
        );
    }
    // Case spans on one worker are sequential, never overlapping.
    let workers: BTreeSet<usize> = trace.spans.iter().map(|s| s.worker).collect();
    for w in workers {
        let mut mine: Vec<&Span> = trace
            .spans
            .iter()
            .filter(|s| s.worker == w && s.name == "case")
            .collect();
        mine.sort_by_key(|s| s.start_us);
        for pair in mine.windows(2) {
            assert!(
                pair[1].start_us >= pair[0].end_us(),
                "worker {w} case spans overlap: [{}, {}] then start {}",
                pair[0].start_us,
                pair[0].end_us(),
                pair[1].start_us
            );
        }
    }
}

#[test]
fn traced_campaign_yields_nested_spans_joined_to_events_and_a_report() {
    let (trace, events, result) = traced_run(2, 6, true);
    assert_well_nested(&trace);

    let span_names: BTreeSet<&str> = trace.spans.iter().map(|s| s.name.as_str()).collect();
    for required in [
        "campaign",
        "worker",
        "queue_wait",
        "case",
        "build",
        "simulate",
        "scan",
    ] {
        assert!(span_names.contains(required), "missing `{required}` spans");
    }
    // The cycle-batched simulate hook sampled the core at least once per
    // case, and the build spans carry the cache arg.
    let sim_samples = trace
        .marks
        .iter()
        .filter(|m| m.name == "sim_cycles")
        .count();
    assert!(sim_samples >= 6, "expected ≥1 sim_cycles sample per case");
    for s in trace.spans.iter().filter(|s| s.name == "build") {
        assert!(
            s.arg_text("cache").is_some(),
            "build span without cache arg"
        );
    }

    // Case span ids join the JSONL stream: every CaseStarted/CaseFinished
    // line names an actual case span, under that worker's actual span.
    let case_ids: BTreeSet<u64> = trace
        .spans
        .iter()
        .filter(|s| s.name == "case")
        .map(|s| s.id)
        .collect();
    assert_eq!(case_ids.len(), 6);
    let mut joined = 0;
    for line in events.lines() {
        let event: EngineEvent = serde_json::from_str(line).expect("event parses");
        let (span_id, parent_id) = match &event {
            EngineEvent::CaseStarted {
                span_id, parent_id, ..
            }
            | EngineEvent::CaseFinished {
                span_id, parent_id, ..
            }
            | EngineEvent::CaseCounters {
                span_id, parent_id, ..
            }
            | EngineEvent::CaseQuarantined {
                span_id, parent_id, ..
            } => (*span_id, *parent_id),
            _ => continue,
        };
        let sid = span_id.expect("traced run events carry span ids");
        assert!(
            case_ids.contains(&sid),
            "event span_id {sid} not a case span"
        );
        let case = trace.spans.iter().find(|s| s.id == sid).unwrap();
        assert_eq!(
            parent_id,
            Some(case.parent),
            "parent_id must be the worker span"
        );
        joined += 1;
    }
    assert!(
        joined >= 12,
        "6 CaseStarted + 6 outcome lines, got {joined}"
    );

    // The analyzed report landed in the campaign result.
    let report = result.engine.unwrap().trace.expect("trace report attached");
    assert_eq!(report.cases, 6);
    assert!(!report.critical_path.is_empty());
    assert!(report.stragglers.len() <= 5);
    assert!(report.phases.iter().any(|p| p.phase == "simulate"));
    assert!(!report.workers.is_empty());
    assert!(report.wall_us > 0);
}

#[test]
fn chrome_export_is_loadable_and_roundtrips() {
    let (trace, _, _) = traced_run(2, 4, false);
    let json = trace.to_chrome_json();

    // Perfetto-loadable shape: top-level traceEvents array plus one
    // process_name metadata record per worker.
    let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    let events = v
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    assert!(events.len() > trace.spans.len(), "spans + metadata + marks");
    let workers: BTreeSet<usize> = trace.spans.iter().map(|s| s.worker).collect();
    let meta = events
        .iter()
        .filter(
            |e| matches!(e.get("name"), Some(serde_json::Value::String(s)) if s == "process_name"),
        )
        .count();
    assert!(meta >= workers.len(), "one process_name record per worker");

    let back = Trace::from_chrome_json(&json).expect("round-trip parse");
    assert_eq!(back, trace, "Chrome JSON round-trip must be lossless");
    assert_eq!(back.analyze(5), trace.analyze(5));
}

/// A deterministic two-worker trace — the golden fixture's source. Only
/// hand-picked timestamps, so the serialized form is byte-stable.
fn golden_trace() -> Trace {
    let span =
        |id, parent, worker, name: &str, start_us, dur_us, args: Vec<(&str, ArgValue)>| Span {
            id,
            parent,
            worker,
            name: name.into(),
            start_us,
            dur_us,
            args: args.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        };
    let text = |s: &str| ArgValue::Text(s.into());
    // Spans in canonical `(start_us, id)` order — the order Tracer
    // snapshots and `from_chrome_json` restores — so the fixture
    // round-trips to exactly this value.
    Trace {
        spans: vec![
            span(
                1,
                0,
                0,
                "campaign",
                0,
                50_000,
                vec![
                    ("design", text("boom")),
                    ("cases", ArgValue::U64(2)),
                    ("threads", ArgValue::U64(2)),
                ],
            ),
            span(
                2,
                1,
                0,
                "worker",
                10,
                49_000,
                vec![("cases", ArgValue::U64(1))],
            ),
            span(3, 2, 0, "queue_wait", 10, 5, vec![]),
            span(
                8,
                1,
                1,
                "worker",
                15,
                20_000,
                vec![("cases", ArgValue::U64(1))],
            ),
            span(
                4,
                2,
                0,
                "case",
                20,
                40_000,
                vec![
                    ("case", text("exp_load_l1_hit__case")),
                    ("seq", ArgValue::U64(0)),
                    ("design", text("boom")),
                    ("cache", text("boot_fork")),
                    ("cycles", ArgValue::U64(41_210)),
                    ("findings", ArgValue::U64(2)),
                ],
            ),
            span(
                5,
                4,
                0,
                "build",
                20,
                3_000,
                vec![("cache", text("boot_fork"))],
            ),
            span(
                9,
                8,
                1,
                "case",
                30,
                18_000,
                vec![
                    ("case", text("exp_flush_probe__case")),
                    ("seq", ArgValue::U64(1)),
                    ("design", text("boom")),
                ],
            ),
            span(
                6,
                4,
                0,
                "simulate",
                3_020,
                30_000,
                vec![
                    ("cycles", ArgValue::U64(41_210)),
                    ("cache", text("boot_fork")),
                ],
            ),
            span(
                7,
                4,
                0,
                "scan",
                33_020,
                6_000,
                vec![
                    ("streaming", ArgValue::U64(1)),
                    ("findings", ArgValue::U64(2)),
                ],
            ),
        ],
        marks: vec![
            Mark {
                worker: 0,
                name: "sim_cycles".into(),
                at_us: 10_000,
                parent: 0,
                value: Some(25_000),
            },
            Mark {
                worker: 1,
                name: "watchdog_fire".into(),
                at_us: 18_000,
                parent: 9,
                value: None,
            },
        ],
    }
}

#[test]
fn chrome_json_shape_matches_committed_fixture() {
    let rendered = golden_trace().to_chrome_json();

    if std::env::var_os("TEESEC_REGEN_FIXTURES").is_some() {
        std::fs::write(FIXTURE, &rendered).expect("write fixture");
        return;
    }

    let fixture = std::fs::read_to_string(FIXTURE)
        .expect("fixture missing — regenerate with TEESEC_REGEN_FIXTURES=1");
    assert_eq!(
        rendered, fixture,
        "Chrome trace serialization drifted from the committed schema \
         (tooling parses these fields — regenerate only on purpose)"
    );
    let back = Trace::from_chrome_json(&fixture).expect("fixture parses");
    assert_eq!(
        back,
        golden_trace(),
        "fixture round-trips to the source trace"
    );
}

proptest! {
    /// Nesting invariants hold at any worker count / corpus size, and the
    /// span tree always accounts for every case exactly once.
    #[test]
    fn span_tree_is_well_nested_at_any_shape(threads in 1usize..4, cases in 1usize..6) {
        let (trace, _, result) = traced_run(threads, cases, false);
        assert_well_nested(&trace);
        let case_spans = trace.spans.iter().filter(|s| s.name == "case").count();
        prop_assert_eq!(case_spans, cases);
        prop_assert_eq!(result.case_count, cases);
        let campaigns = trace.spans.iter().filter(|s| s.name == "campaign").count();
        prop_assert_eq!(campaigns, 1);
        let workers = trace.spans.iter().filter(|s| s.name == "worker").count();
        prop_assert_eq!(workers, threads.max(1));
    }
}

#[test]
fn disabled_tracer_is_free_and_enabled_tracing_stays_bounded() {
    // Micro guard: the disabled tracer's span/arg path must be a true
    // no-op — a million inert guards in well under a second.
    let off = Tracer::disabled();
    let t = Instant::now();
    for i in 0..1_000_000u64 {
        let mut g = off.span(0, "noop", 0);
        g.arg("k", i);
    }
    let noop = t.elapsed();
    assert!(
        noop.as_millis() < 900,
        "1M disabled spans took {noop:?} — the off path is doing work"
    );

    // Engine guard, obs_overhead-style: a fully traced run stays within a
    // loose multiple of the untraced one (results identical). Real
    // percentages live in BENCH_pr5.json.
    let cfg = CoreConfig::boom();
    let corpus = Fuzzer::with_target(8).generate(&cfg);
    let _ = Engine::new(cfg.clone(), EngineOptions::default())
        .run_corpus(&corpus[..2], PhaseTiming::default());

    let t0 = Instant::now();
    let (plain, _) = Engine::new(cfg.clone(), EngineOptions::default())
        .run_corpus(&corpus, PhaseTiming::default());
    let plain_us = t0.elapsed().as_micros();

    let t1 = Instant::now();
    let (traced, _) = Engine::new(
        cfg,
        EngineOptions {
            tracer: Tracer::new(1),
            ..EngineOptions::default()
        },
    )
    .run_corpus(&corpus, PhaseTiming::default());
    let traced_us = t1.elapsed().as_micros();

    assert_eq!(plain.case_count, traced.case_count);
    assert_eq!(plain.classes_found, traced.classes_found);
    assert!(traced.engine.unwrap().trace.is_some());
    let bound = plain_us * 10 + 500_000;
    assert!(
        traced_us <= bound,
        "traced engine took {traced_us}us vs {plain_us}us untraced (bound {bound}us)"
    );
}
