//! Lint-style locks on the Prometheus text exposition: every family that
//! `campaign_snapshot` / `coverage_snapshot` / `live_campaign_snapshot`
//! can ever emit must carry exactly one `# HELP`/`# TYPE` header (before
//! its first sample), use a consistent unit suffix, and keep histogram
//! buckets cumulative. The live `/metrics` scrape is held to the same
//! discipline, and its family set must stay a subset of the final
//! exposition's. A new metric that violates the house conventions fails
//! here, not in a dashboard three weeks later.

use std::collections::{BTreeMap, BTreeSet};

use teesec::campaign::Campaign;
use teesec::engine::EngineOptions;
use teesec::fuzz::{CoverageFuzzer, Fuzzer};
use teesec::live_campaign_snapshot;
use teesec::metrics::{campaign_snapshot, coverage_snapshot};
use teesec_telemetry::MetricsHub;
use teesec_trace::Tracer;
use teesec_uarch::CoreConfig;

/// Families that intentionally carry no unit suffix (dimensionless flags
/// and info-style gauges).
const NO_UNIT_ALLOWLIST: &[&str] = &[
    "teesec_leak_class_detected",
    "teesec_build_info",
    "teesec_plan_path_exercised",
    "teesec_up",
];

/// Recognized unit / kind suffixes a family name may end with.
const UNIT_SUFFIXES: &[&str] = &[
    "_total", "_us", "_seconds", "_cycles", "_entries", "_buckets", "_ratio", "_threads",
];

/// Aggregation suffixes stripped before the unit check (`*_seconds_p99`
/// has unit `seconds`).
const AGG_SUFFIXES: &[&str] = &["_p50", "_p90", "_p99", "_sum", "_count"];

#[derive(Debug, Default)]
struct Family {
    help: usize,
    r#type: usize,
    kind: String,
    /// Line index of the first sample (headers must precede it).
    first_sample: Option<usize>,
    header_line: Option<usize>,
}

struct Exposition {
    families: BTreeMap<String, Family>,
    /// `(family, sample name, label blob, value)` per sample line.
    samples: Vec<(String, String, String, String)>,
}

/// Splits `name{labels} value` / `name value` into its three parts.
fn split_sample(line: &str) -> (String, String, String) {
    if let Some(brace) = line.find('{') {
        let close = line.rfind('}').expect("unclosed label set");
        (
            line[..brace].to_string(),
            line[brace..=close].to_string(),
            line[close + 1..].trim().to_string(),
        )
    } else {
        let (name, value) = line.split_once(' ').expect("sample without value");
        (name.to_string(), String::new(), value.trim().to_string())
    }
}

fn parse(text: &str) -> Exposition {
    let mut families: BTreeMap<String, Family> = BTreeMap::new();
    let mut samples = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest.split_once(' ').expect("HELP without text");
            assert!(!help.trim().is_empty(), "empty HELP for {name}");
            let f = families.entry(name.to_string()).or_default();
            f.help += 1;
            f.header_line.get_or_insert(idx);
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').expect("TYPE without kind");
            let f = families.entry(name.to_string()).or_default();
            f.r#type += 1;
            f.kind = kind.trim().to_string();
            f.header_line.get_or_insert(idx);
        } else {
            assert!(!line.starts_with('#'), "unexpected comment: {line}");
            let (name, labels, value) = split_sample(line);
            // Histogram sample names are the family plus a component
            // suffix; everything else must match its family exactly.
            let family = if families.contains_key(&name) {
                name.clone()
            } else {
                let stripped = ["_bucket", "_sum", "_count"]
                    .iter()
                    .find_map(|s| name.strip_suffix(s))
                    .unwrap_or(&name);
                assert!(
                    families
                        .get(stripped)
                        .is_some_and(|f| f.kind == "histogram"),
                    "sample `{name}` has no preceding # HELP/# TYPE header"
                );
                stripped.to_string()
            };
            let f = families.get_mut(&family).unwrap();
            f.first_sample.get_or_insert(idx);
            samples.push((family, name, labels, value));
        }
    }
    Exposition { families, samples }
}

/// A full-featured engine run (counters + diff + streaming + snapshot
/// cache + tracing) so every optional family appears in the exposition.
fn full_campaign_result() -> teesec::CampaignResult {
    let campaign = Campaign::new(CoreConfig::boom(), Fuzzer::with_target(6));
    let (result, _) = campaign.run_engine(EngineOptions {
        threads: 2,
        counters: true,
        diff: Some(teesec::diff::DiffOptions::default()),
        streaming: true,
        snapshot_cache: true,
        coverage: true,
        tracer: Tracer::new(2),
        ..EngineOptions::default()
    });
    result
}

fn full_campaign_text() -> String {
    campaign_snapshot(&full_campaign_result()).render_prometheus()
}

fn coverage_text() -> String {
    let cfg = CoreConfig::boom();
    let outcome = CoverageFuzzer::new(2, 4).run(&cfg);
    coverage_snapshot(&outcome, &cfg.name).render_prometheus()
}

fn lint(text: &str) {
    let exp = parse(text);
    assert!(!exp.samples.is_empty(), "empty exposition");

    let name_ok = |n: &str| {
        !n.is_empty()
            && n.starts_with(|c: char| c.is_ascii_lowercase())
            && n.chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    };

    for (name, f) in &exp.families {
        assert_eq!(
            f.help, 1,
            "{name}: expected exactly one # HELP, got {}",
            f.help
        );
        assert_eq!(
            f.r#type, 1,
            "{name}: expected exactly one # TYPE, got {}",
            f.r#type
        );
        assert!(
            matches!(f.kind.as_str(), "counter" | "gauge" | "histogram"),
            "{name}: unknown kind `{}`",
            f.kind
        );
        assert!(name_ok(name), "{name}: invalid metric name");
        assert!(
            name.starts_with("teesec_"),
            "{name}: missing teesec_ namespace"
        );
        let first = f
            .first_sample
            .unwrap_or_else(|| panic!("{name}: header without samples"));
        assert!(
            f.header_line.unwrap() < first,
            "{name}: headers must precede the first sample"
        );

        // Unit-suffix discipline: counters end `_total`; every family ends
        // with a recognized unit (percentile/sum/count aggregations strip
        // first) unless explicitly allowlisted as dimensionless.
        if f.kind == "counter" {
            assert!(
                name.ends_with("_total"),
                "{name}: counters must end in _total"
            );
        } else {
            assert!(
                !name.ends_with("_total"),
                "{name}: _total implies a counter"
            );
        }
        if !NO_UNIT_ALLOWLIST.contains(&name.as_str()) {
            let base = AGG_SUFFIXES
                .iter()
                .find_map(|s| name.strip_suffix(s))
                .unwrap_or(name);
            assert!(
                UNIT_SUFFIXES.iter().any(|u| base.ends_with(u)),
                "{name}: no recognized unit suffix (base `{base}`); \
                 extend UNIT_SUFFIXES or NO_UNIT_ALLOWLIST deliberately"
            );
        }
    }

    // No duplicate (sample name, label set) pairs.
    let mut seen = BTreeSet::new();
    for (_, name, labels, _) in &exp.samples {
        assert!(
            seen.insert((name.clone(), labels.clone())),
            "duplicate sample {name}{labels}"
        );
    }

    // Histogram shape, per label set (labeled histograms like the
    // secret-residency family emit one bucket series per label
    // combination): buckets cumulative non-decreasing, +Inf == _count,
    // _sum and _count present for every label set.
    for (name, f) in &exp.families {
        if f.kind != "histogram" {
            continue;
        }
        type Group = (Vec<(String, u64)>, Option<String>, Option<u64>);
        let mut groups: BTreeMap<String, Group> = BTreeMap::new();
        for (family, sample, labels, value) in &exp.samples {
            if family != name {
                continue;
            }
            if sample == &format!("{name}_bucket") {
                let (rest, le) = split_le(sample, labels);
                groups
                    .entry(rest)
                    .or_default()
                    .0
                    .push((le, value.parse().unwrap()));
            } else if sample == &format!("{name}_sum") {
                groups.entry(labels.clone()).or_default().1 = Some(value.clone());
            } else if sample == &format!("{name}_count") {
                groups.entry(labels.clone()).or_default().2 = Some(value.parse::<u64>().unwrap());
            }
        }
        assert!(!groups.is_empty(), "{name}: histogram without samples");
        for (labels, (buckets, sum, count)) in &groups {
            let count = count.unwrap_or_else(|| panic!("{name}{labels}: missing _count"));
            assert!(sum.is_some(), "{name}{labels}: missing _sum");
            assert!(
                !buckets.is_empty(),
                "{name}{labels}: histogram without buckets"
            );
            assert!(
                buckets.windows(2).all(|w| w[0].1 <= w[1].1),
                "{name}{labels}: bucket counts must be cumulative: {buckets:?}"
            );
            let (last_le, last_n) = buckets.last().unwrap();
            assert_eq!(last_le, "+Inf", "{name}{labels}: last bucket must be +Inf");
            assert_eq!(
                *last_n, count,
                "{name}{labels}: +Inf bucket must equal _count"
            );
        }
    }
}

/// Splits a bucket sample's label blob into the non-`le` label set (the
/// group key, matching the family's `_sum`/`_count` labels) and the `le`
/// bound. `le` is always rendered last.
fn split_le(sample: &str, labels: &str) -> (String, String) {
    let inner = labels
        .strip_prefix('{')
        .and_then(|l| l.strip_suffix('}'))
        .unwrap_or_else(|| panic!("{sample}: malformed label set `{labels}`"));
    let (rest, le) = match inner.rfind(",le=\"") {
        Some(i) => (&inner[..i], &inner[i + 5..]),
        None => (
            "",
            inner
                .strip_prefix("le=\"")
                .unwrap_or_else(|| panic!("{sample}: bucket without le `{labels}`")),
        ),
    };
    let le = le
        .strip_suffix('"')
        .unwrap_or_else(|| panic!("{sample}: malformed le label `{labels}`"));
    let rest = if rest.is_empty() {
        String::new()
    } else {
        format!("{{{rest}}}")
    };
    (rest, le.to_string())
}

#[test]
fn campaign_exposition_passes_the_lint() {
    let text = full_campaign_text();
    lint(&text);
    // The audited families from this PR are actually present and typed
    // the way the audit fixed them.
    assert!(
        text.contains("# TYPE teesec_leak_class_detected gauge"),
        "{text}"
    );
    assert!(text.contains("# TYPE teesec_structure_occupancy_entries gauge"));
    assert!(!text.contains("teesec_structure_occupancy_at_exit"));
    assert!(text.contains("# TYPE teesec_phase_wall_seconds_p99 gauge"));
    assert!(text.contains("# TYPE teesec_worker_busy_ratio gauge"));
    assert!(text.contains("# TYPE teesec_snapshot_cache_capture_us_total counter"));
    assert!(text.contains("phase=\"simulate\""));
    // The coverage-observability families land in every full campaign
    // exposition, and build info is stamped on it.
    assert!(text.contains("# TYPE teesec_build_info gauge"));
    assert!(text.contains("teesec_build_info{version=\""));
    assert!(text.contains("# TYPE teesec_plan_path_exercised gauge"));
    assert!(text.contains("# TYPE teesec_plan_coverage_ratio gauge"));
    assert!(text.contains("# TYPE teesec_secret_residency_cycles histogram"));
    assert!(text.contains("# TYPE teesec_secret_residency_worst_cycles gauge"));
}

#[test]
fn build_info_is_stamped_on_every_exposition() {
    for text in [full_campaign_text(), coverage_text()] {
        assert!(
            text.contains("teesec_build_info{version=\"") && text.contains("profile=\""),
            "exposition without build info:\n{text}"
        );
    }
}

#[test]
fn coverage_exposition_passes_the_lint() {
    lint(&coverage_text());
}

#[test]
fn the_lint_itself_catches_violations() {
    // Missing header.
    let r = std::panic::catch_unwind(|| lint("teesec_orphan_total 3\n"));
    assert!(r.is_err(), "orphan sample must fail");
    // Counter without _total.
    let r = std::panic::catch_unwind(|| {
        lint("# HELP teesec_bad_us x\n# TYPE teesec_bad_us counter\nteesec_bad_us 3\n")
    });
    assert!(r.is_err(), "counter without _total must fail");
    // Unitless gauge outside the allowlist.
    let r = std::panic::catch_unwind(|| {
        lint("# HELP teesec_mystery x\n# TYPE teesec_mystery gauge\nteesec_mystery 3\n")
    });
    assert!(r.is_err(), "unit-less family must fail");
    // A well-formed family passes.
    lint("# HELP teesec_ok_total x\n# TYPE teesec_ok_total counter\nteesec_ok_total 3\n");
    // A labeled histogram with two label sets passes: each set has its
    // own cumulative buckets and _sum/_count.
    lint(concat!(
        "# HELP teesec_lab_cycles x\n# TYPE teesec_lab_cycles histogram\n",
        "teesec_lab_cycles_bucket{s=\"a\",le=\"1\"} 1\n",
        "teesec_lab_cycles_bucket{s=\"a\",le=\"+Inf\"} 2\n",
        "teesec_lab_cycles_sum{s=\"a\"} 3\n",
        "teesec_lab_cycles_count{s=\"a\"} 2\n",
        "teesec_lab_cycles_bucket{s=\"b\",le=\"1\"} 5\n",
        "teesec_lab_cycles_bucket{s=\"b\",le=\"+Inf\"} 5\n",
        "teesec_lab_cycles_sum{s=\"b\"} 4\n",
        "teesec_lab_cycles_count{s=\"b\"} 5\n",
    ));
    // ...but non-cumulative buckets within one label set still fail even
    // when the interleaved sets would look monotonic combined.
    let r = std::panic::catch_unwind(|| {
        lint(concat!(
            "# HELP teesec_lab_cycles x\n# TYPE teesec_lab_cycles histogram\n",
            "teesec_lab_cycles_bucket{s=\"a\",le=\"1\"} 4\n",
            "teesec_lab_cycles_bucket{s=\"a\",le=\"+Inf\"} 2\n",
            "teesec_lab_cycles_sum{s=\"a\"} 3\n",
            "teesec_lab_cycles_count{s=\"a\"} 2\n",
        ))
    });
    assert!(r.is_err(), "non-cumulative labeled buckets must fail");
}

/// The family names of every sample in an exposition.
fn family_set(text: &str) -> BTreeSet<String> {
    parse(text).families.into_keys().collect()
}

#[test]
fn live_exposition_passes_the_lint_and_stamps_the_live_families() {
    let text = live_campaign_snapshot(&full_campaign_result(), 500_000, 3).render_prometheus();
    lint(&text);
    assert!(text.contains("# TYPE teesec_up gauge"), "{text}");
    assert!(text.contains("teesec_up 1"), "{text}");
    assert!(
        text.contains("# TYPE teesec_campaign_progress_ratio gauge"),
        "{text}"
    );
    assert!(
        text.contains("teesec_campaign_progress_ratio{design=\"boom\"} 0.500000"),
        "{text}"
    );
    assert!(
        text.contains("# TYPE teesec_events_dropped_total counter"),
        "{text}"
    );
    assert!(text.contains("teesec_events_dropped_total 3"), "{text}");
}

#[test]
fn served_scrape_carries_the_prometheus_content_type_and_lints() {
    use std::io::{Read, Write};

    let hub = MetricsHub::default();
    hub.publish_metrics(
        live_campaign_snapshot(&full_campaign_result(), 1_000_000, 0).render_prometheus(),
    );
    let server = teesec_telemetry::serve(hub, "127.0.0.1:0").expect("bind");
    let mut stream = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    write!(stream, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n").expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let (head, body) = response.split_once("\r\n\r\n").expect("header terminator");
    assert!(head.contains("200 OK"), "{head}");
    assert!(
        head.contains(&format!(
            "Content-Type: {}",
            teesec_obs::PROMETHEUS_CONTENT_TYPE
        )),
        "{head}"
    );
    lint(body);
}

#[test]
fn live_scrape_families_are_a_subset_of_the_finals() {
    // Capture a mid-flight exposition off a real campaign (the engine
    // publishes before spawning workers, so one is up immediately) and
    // the final one after the run returns. Families visible live — some,
    // like the residency histograms, only materialize once cases land —
    // must all still exist in the final exposition, so a dashboard built
    // against a mid-flight scrape never dangles.
    let hub = MetricsHub::default();
    let run = {
        let hub = hub.clone();
        std::thread::spawn(move || {
            Campaign::new(CoreConfig::boom(), Fuzzer::with_target(400)).run_engine(EngineOptions {
                threads: 2,
                counters: true,
                coverage: true,
                telemetry: Some(hub),
                ..EngineOptions::default()
            })
        })
    };
    let live = loop {
        if let Some(text) = hub.metrics() {
            break text;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    };
    run.join().expect("campaign thread");
    let final_text = hub.metrics().expect("final exposition");

    lint(&live);
    lint(&final_text);
    let (live_families, final_families) = (family_set(&live), family_set(&final_text));
    let dangling: Vec<&String> = live_families.difference(&final_families).collect();
    assert!(
        dangling.is_empty(),
        "live families missing from the final exposition: {dangling:?}"
    );
    for stamp in [
        "teesec_up",
        "teesec_campaign_progress_ratio",
        "teesec_events_dropped_total",
    ] {
        assert!(live_families.contains(stamp), "{stamp} missing live");
        assert!(final_families.contains(stamp), "{stamp} missing final");
    }
}
