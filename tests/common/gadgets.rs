//! Shared random-gadget generator for the property suites
//! (`diff_equivalence_prop` and `stream_soundness_prop`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use teesec_isa::asm::Assembler;
use teesec_isa::csr;
use teesec_isa::inst::{AluOp, BranchCond, Inst, MemWidth};
use teesec_isa::reg::Reg;

/// Program load address used by all generated gadgets.
pub const BASE: u64 = 0x8000_0000;
/// Scratch data region used by generated loads/stores.
pub const DATA: u64 = 0x8020_0000;

const POOL: [Reg; 8] = [
    Reg::ZERO,
    Reg::A0,
    Reg::A1,
    Reg::A2,
    Reg::T0,
    Reg::T1,
    Reg::T2,
    Reg::S2,
];

fn reg(rng: &mut StdRng) -> Reg {
    POOL[rng.gen_range(0..POOL.len())]
}

/// A random, always-terminating gadget program. `branchy` adds forward
/// branches and bounded countdown loops; otherwise the program is pure
/// straight-line ALU/memory work.
pub fn gadget_program(seed: u64, len: usize, branchy: bool) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut a = Assembler::new(BASE);
    a.la(Reg::T5, "handler");
    a.csrw(csr::MTVEC, Reg::T5);
    a.li(Reg::S10, DATA);
    let mut label = 0usize;
    for _ in 0..len {
        let roll = if branchy {
            rng.gen_range(0..100)
        } else {
            rng.gen_range(0..60)
        };
        match roll {
            0..=29 => {
                let op = [AluOp::Add, AluOp::Xor, AluOp::Or, AluOp::And, AluOp::Sub]
                    [rng.gen_range(0..5)];
                a.inst(Inst::AluReg {
                    op,
                    rd: reg(&mut rng),
                    rs1: reg(&mut rng),
                    rs2: reg(&mut rng),
                    word: rng.gen_bool(0.25),
                });
            }
            30..=44 => {
                let width =
                    [MemWidth::B, MemWidth::H, MemWidth::W, MemWidth::D][rng.gen_range(0..4)];
                let off: i32 = rng.gen_range(0..64) * 8;
                if rng.gen_bool(0.5) {
                    a.store(width, reg(&mut rng), Reg::S10, off);
                } else {
                    a.load(width, reg(&mut rng), Reg::S10, off);
                }
            }
            45..=59 => {
                a.li(reg(&mut rng), rng.gen::<u64>());
            }
            60..=79 => {
                let l = format!("fwd_{label}");
                label += 1;
                a.branch(
                    [BranchCond::Eq, BranchCond::Ne, BranchCond::Ltu][rng.gen_range(0..3)],
                    reg(&mut rng),
                    reg(&mut rng),
                    &l,
                );
                for _ in 0..rng.gen_range(1..3) {
                    a.addi(reg(&mut rng), reg(&mut rng), rng.gen_range(-32..32));
                }
                a.label(l);
            }
            _ => {
                let l = format!("loop_{label}");
                label += 1;
                a.li(Reg::T4, rng.gen_range(1..5));
                a.label(&l);
                a.add(reg(&mut rng), reg(&mut rng), reg(&mut rng));
                a.addi(Reg::T4, Reg::T4, -1);
                a.bnez(Reg::T4, &l);
            }
        }
    }
    a.j("handler");
    a.label("handler");
    a.inst(Inst::Ebreak);
    a.assemble().expect("gadget program must assemble")
}
