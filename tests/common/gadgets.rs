//! Shared random-gadget generator for the property suites
//! (`diff_equivalence_prop`, `stream_soundness_prop` and
//! `fastpath_prop`). Not every suite uses every generator.
#![allow(dead_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use teesec_isa::asm::Assembler;
use teesec_isa::csr;
use teesec_isa::inst::{AluOp, BranchCond, Inst, MemWidth};
use teesec_isa::reg::Reg;
use teesec_isa::vm::{PhysAddr, Pte};

/// Program load address used by all generated gadgets.
pub const BASE: u64 = 0x8000_0000;
/// Scratch data region used by generated loads/stores.
pub const DATA: u64 = 0x8020_0000;

const POOL: [Reg; 8] = [
    Reg::ZERO,
    Reg::A0,
    Reg::A1,
    Reg::A2,
    Reg::T0,
    Reg::T1,
    Reg::T2,
    Reg::S2,
];

fn reg(rng: &mut StdRng) -> Reg {
    POOL[rng.gen_range(0..POOL.len())]
}

/// A random, always-terminating gadget program. `branchy` adds forward
/// branches and bounded countdown loops; otherwise the program is pure
/// straight-line ALU/memory work.
pub fn gadget_program(seed: u64, len: usize, branchy: bool) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut a = Assembler::new(BASE);
    a.la(Reg::T5, "handler");
    a.csrw(csr::MTVEC, Reg::T5);
    a.li(Reg::S10, DATA);
    let mut label = 0usize;
    for _ in 0..len {
        let roll = if branchy {
            rng.gen_range(0..100)
        } else {
            rng.gen_range(0..60)
        };
        match roll {
            0..=29 => {
                let op = [AluOp::Add, AluOp::Xor, AluOp::Or, AluOp::And, AluOp::Sub]
                    [rng.gen_range(0..5)];
                a.inst(Inst::AluReg {
                    op,
                    rd: reg(&mut rng),
                    rs1: reg(&mut rng),
                    rs2: reg(&mut rng),
                    word: rng.gen_bool(0.25),
                });
            }
            30..=44 => {
                let width =
                    [MemWidth::B, MemWidth::H, MemWidth::W, MemWidth::D][rng.gen_range(0..4)];
                let off: i32 = rng.gen_range(0..64) * 8;
                if rng.gen_bool(0.5) {
                    a.store(width, reg(&mut rng), Reg::S10, off);
                } else {
                    a.load(width, reg(&mut rng), Reg::S10, off);
                }
            }
            45..=59 => {
                a.li(reg(&mut rng), rng.gen::<u64>());
            }
            60..=79 => {
                let l = format!("fwd_{label}");
                label += 1;
                a.branch(
                    [BranchCond::Eq, BranchCond::Ne, BranchCond::Ltu][rng.gen_range(0..3)],
                    reg(&mut rng),
                    reg(&mut rng),
                    &l,
                );
                for _ in 0..rng.gen_range(1..3) {
                    a.addi(reg(&mut rng), reg(&mut rng), rng.gen_range(-32..32));
                }
                a.label(l);
            }
            _ => {
                let l = format!("loop_{label}");
                label += 1;
                a.li(Reg::T4, rng.gen_range(1..5));
                a.label(&l);
                a.add(reg(&mut rng), reg(&mut rng), reg(&mut rng));
                a.addi(Reg::T4, Reg::T4, -1);
                a.bnez(Reg::T4, &l);
            }
        }
    }
    a.j("handler");
    a.label("handler");
    a.inst(Inst::Ebreak);
    a.assemble().expect("gadget program must assemble")
}

/// Emits a random, always-terminating ALU/branch body into an existing
/// assembler (no memory traffic, no CSRs) — safe to embed in host code
/// assembled by [`Platform::builder`]-style closures. Labels are
/// prefixed with the seed so the body composes with surrounding code.
///
/// [`Platform::builder`]: teesec_tee::platform::Platform::builder
pub fn emit_alu_body(a: &mut Assembler, seed: u64, len: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut label = 0usize;
    for _ in 0..len {
        match rng.gen_range(0..100) {
            0..=39 => {
                let op = [AluOp::Add, AluOp::Xor, AluOp::Or, AluOp::And, AluOp::Sub]
                    [rng.gen_range(0..5)];
                a.inst(Inst::AluReg {
                    op,
                    rd: reg(&mut rng),
                    rs1: reg(&mut rng),
                    rs2: reg(&mut rng),
                    word: rng.gen_bool(0.25),
                });
            }
            40..=64 => {
                a.li(reg(&mut rng), rng.gen::<u64>());
            }
            65..=84 => {
                let l = format!("alu{seed}_fwd_{label}");
                label += 1;
                a.branch(
                    [BranchCond::Eq, BranchCond::Ne, BranchCond::Ltu][rng.gen_range(0..3)],
                    reg(&mut rng),
                    reg(&mut rng),
                    &l,
                );
                for _ in 0..rng.gen_range(1..3) {
                    a.addi(reg(&mut rng), reg(&mut rng), rng.gen_range(-32..32));
                }
                a.label(l);
            }
            _ => {
                let l = format!("alu{seed}_loop_{label}");
                label += 1;
                a.li(Reg::T4, rng.gen_range(1..5));
                a.label(&l);
                a.add(reg(&mut rng), reg(&mut rng), reg(&mut rng));
                a.addi(Reg::T4, Reg::T4, -1);
                a.bnez(Reg::T4, &l);
            }
        }
    }
}

/// A random self-modifying gadget: each round stores a freshly encoded
/// `addi a0, a0, imm` over a placeholder `addi a0, a0, 1` a few
/// instructions ahead, then falls through and executes the patch point.
///
/// With `sync` the store is made architecturally visible to fetch
/// (`fence` drains the store buffer, `fence.i` invalidates the I-side)
/// before the patch point runs, so the patched immediates are guaranteed
/// to execute and the returned expected value is exact. Without `sync`
/// the gadget races the front end — stale fetches are *reference
/// behavior* (the I-side is incoherent until `fence.i`), so callers can
/// only assert run-to-run equivalence, not a specific `a0`.
///
/// Returns `(program_words, expected_a0_when_synced)`.
pub fn smc_gadget_program(seed: u64, patches: usize, sync: bool) -> (Vec<u32>, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut a = Assembler::new(BASE);
    a.la(Reg::T5, "handler");
    a.csrw(csr::MTVEC, Reg::T5);
    let mut expected = 0u64;
    for i in 0..patches {
        let imm: i32 = rng.gen_range(2..512);
        let patched = Inst::AluImm {
            op: AluOp::Add,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm,
            word: false,
        }
        .encode();
        let label = format!("patch_{i}");
        a.la(Reg::S11, label.clone());
        a.li32(Reg::T0, patched);
        a.sw(Reg::T0, Reg::S11, 0);
        if sync {
            a.fence();
            a.inst(Inst::FenceI);
            expected += imm as u64;
        }
        for _ in 0..rng.gen_range(0..4usize) {
            a.addi(Reg::T1, Reg::T1, 1);
        }
        a.label(label);
        a.addi(Reg::A0, Reg::A0, 1); // placeholder the store overwrites
    }
    a.j("handler");
    a.label("handler");
    a.inst(Inst::Ebreak);
    (a.assemble().expect("smc gadget must assemble"), expected)
}

/// Virtual address the satp-remap gadget executes supervisor code at.
pub const REMAP_VA: u64 = 0x4000_0000;
/// Physical code pages the two address spaces map [`REMAP_VA`] to.
pub const REMAP_PA1: u64 = 0x8030_0000;
pub const REMAP_PA2: u64 = 0x8030_1000;
/// Roots of the two page-table trees (each tree: root, l1, l0).
pub const REMAP_ROOT1: u64 = 0x8100_0000;
pub const REMAP_ROOT2: u64 = 0x8100_3000;

/// Builds a three-level sv39 tree at `root` mapping [`REMAP_VA`] to
/// `code_pa` (read+execute), using `root + 0x1000` and `root + 0x2000`
/// for the intermediate levels. Returns the PTE words to install.
fn remap_tree(root: u64, code_pa: u64) -> [(u64, u64); 3] {
    let va = teesec_isa::vm::VirtAddr(REMAP_VA);
    let l1 = root + 0x1000;
    let l0 = root + 0x2000;
    [
        (root + va.vpn(2) * 8, Pte::table(PhysAddr(l1)).0),
        (l1 + va.vpn(1) * 8, Pte::table(PhysAddr(l0)).0),
        (
            l0 + va.vpn(0) * 8,
            Pte::leaf(PhysAddr(code_pa), Pte::R | Pte::X).0,
        ),
    ]
}

/// What [`satp_remap_gadget`] returns: the machine-mode program, the two
/// S-mode code pages (to load at [`REMAP_PA1`]/[`REMAP_PA2`]), the
/// page-table words as `(addr, value)` pairs, and the exact `a0` both
/// executions must leave behind.
pub type SatpRemapGadget = (Vec<u32>, [Vec<u32>; 2], Vec<(u64, u64)>, u64);

/// The satp-remap gadget: a machine-mode supervisor that `mret`s into
/// S-mode code at [`REMAP_VA`] under page table 1, takes the `ecall`
/// back, swaps `satp` to page table 2 (plus `sfence.vma`), and re-enters
/// the *same* virtual address — which now names a different physical
/// page with different code. Any fetch-side cache keyed without the
/// physical mapping would replay page 1's instructions after the remap.
///
/// Returns the machine-mode program, the two S-mode code pages (to load
/// at [`REMAP_PA1`]/[`REMAP_PA2`]), the page-table words (addr, value),
/// and the exact `a0` both executions must leave behind.
pub fn satp_remap_gadget(seed: u64) -> SatpRemapGadget {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut expected = 0u64;
    let pages = [0, 1].map(|k| {
        let mut a = Assembler::new(REMAP_VA);
        for _ in 0..rng.gen_range(2..8usize) {
            let imm: i32 = rng.gen_range(1..1024);
            // Distinct per-page constants: executing the wrong page after
            // the remap produces the wrong a0.
            a.addi(Reg::A0, Reg::A0, imm + k);
            expected += (imm + k) as u64;
        }
        a.ecall();
        a.assemble().expect("remap page must assemble")
    });

    let mut tables: Vec<(u64, u64)> = Vec::new();
    tables.extend(remap_tree(REMAP_ROOT1, REMAP_PA1));
    tables.extend(remap_tree(REMAP_ROOT2, REMAP_PA2));

    let satp1 = teesec_isa::csr::Satp::sv39(REMAP_ROOT1).0;
    let satp2 = teesec_isa::csr::Satp::sv39(REMAP_ROOT2).0;
    let mut a = Assembler::new(BASE);
    a.la(Reg::T5, "handler");
    a.csrw(csr::MTVEC, Reg::T5);
    a.li(Reg::T0, satp1);
    a.csrw(csr::SATP, Reg::T0);
    a.li(Reg::T1, 1 << teesec_isa::csr::Mstatus::MPP_SHIFT); // MPP = S
    a.csrw(csr::MSTATUS, Reg::T1);
    a.li(Reg::T2, REMAP_VA);
    a.csrw(csr::MEPC, Reg::T2);
    a.mret();
    a.label("handler");
    // The S-mode ecall lands here in M-mode; MPP was set to S by the trap.
    a.addi(Reg::S2, Reg::S2, 1);
    a.li(Reg::T3, 2);
    a.beq(Reg::S2, Reg::T3, "done");
    a.li(Reg::T0, satp2);
    a.csrw(csr::SATP, Reg::T0);
    a.sfence_vma();
    a.li(Reg::T2, REMAP_VA);
    a.csrw(csr::MEPC, Reg::T2);
    a.mret();
    a.label("done");
    a.inst(Inst::Ebreak);
    let supervisor = a.assemble().expect("remap supervisor must assemble");
    (supervisor, pages, tables, expected)
}
