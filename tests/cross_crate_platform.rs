//! Cross-crate integration: the ISA assembler, the cycle-driven core, the
//! generated security-monitor firmware and the proxy kernel all composed
//! through the platform builder.

use teesec_isa::reg::Reg;
use teesec_tee::platform::{emit_sbi_call, HostVm, Platform};
use teesec_tee::{layout, SbiCall};
use teesec_uarch::trace::{Domain, Structure, TraceEventKind};
use teesec_uarch::{CoreConfig, RunExit};

#[test]
fn secrets_flow_through_real_memory_hierarchy() {
    // The enclave computes a value, stores it; the host later destroys the
    // enclave; memory must be scrubbed while the host's own data survives.
    let mut p = Platform::builder(CoreConfig::boom())
        .seed_u64(layout::HOST_DATA, 0x1111_2222)
        .enclave_code(0, |a, lay| {
            a.li(Reg::T0, 40);
            a.addi(Reg::T0, Reg::T0, 2);
            a.li(Reg::T1, lay.enclave_bases[0] + layout::ENCLAVE_SIZE / 2);
            a.sd(Reg::T0, Reg::T1, 0);
        })
        .host_code(|a, _| {
            emit_sbi_call(a, SbiCall::CreateEnclave, 0);
            emit_sbi_call(a, SbiCall::RunEnclave, 0);
            emit_sbi_call(a, SbiCall::DestroyEnclave, 0);
        })
        .build()
        .expect("build");
    assert_eq!(p.run(3_000_000), RunExit::Halted);
    assert_eq!(p.core.mem.read_u64(layout::enclave_data(0)), 0, "scrubbed");
    assert_eq!(
        p.core.mem.read_u64(layout::HOST_DATA),
        0x1111_2222,
        "host data intact"
    );
}

#[test]
fn sv39_and_bare_hosts_compute_identically() {
    let run = |vm: HostVm| {
        let mut p = Platform::builder(CoreConfig::xiangshan())
            .host_vm(vm)
            .host_code(|a, lay| {
                a.li(Reg::T0, lay.shared_base);
                a.li(Reg::S2, 0);
                for k in 0..8 {
                    a.li(Reg::T1, 100 + k);
                    a.sd(Reg::T1, Reg::T0, (8 * k) as i32);
                }
                for k in 0..8 {
                    a.ld(Reg::T2, Reg::T0, 8 * k);
                    a.add(Reg::S2, Reg::S2, Reg::T2);
                }
            })
            .build()
            .expect("build");
        assert_eq!(p.run(3_000_000), RunExit::Halted);
        p.core.reg(Reg::S2)
    };
    let bare = run(HostVm::Bare);
    let sv39 = run(HostVm::Sv39);
    assert_eq!(bare, (100..108).sum::<u64>());
    assert_eq!(
        bare, sv39,
        "translation must not change architectural results"
    );
}

#[test]
fn attestation_is_content_sensitive() {
    let measure = |seed: u64| {
        let mut p = Platform::builder(CoreConfig::boom())
            .seed_u64(layout::enclave_data(0) + 0x100, seed)
            .host_code(|a, _| {
                emit_sbi_call(a, SbiCall::CreateEnclave, 0);
                emit_sbi_call(a, SbiCall::AttestEnclave, 0);
                a.mv(Reg::S4, Reg::A0); // measurement
            })
            .build()
            .expect("build");
        assert_eq!(p.run(3_000_000), RunExit::Halted);
        p.core.reg(Reg::S4)
    };
    assert_ne!(
        measure(0xAAAA),
        measure(0xBBBB),
        "measurement reflects enclave content"
    );
}

#[test]
fn hardware_walks_appear_in_the_trace() {
    let mut p = Platform::builder(CoreConfig::boom())
        .host_vm(HostVm::Sv39)
        .host_code(|a, lay| {
            a.li(Reg::T0, lay.shared_base + 0x2000);
            a.li(Reg::T1, 7);
            a.sd(Reg::T1, Reg::T0, 0);
            a.ld(Reg::S2, Reg::T0, 0);
        })
        .build()
        .expect("build");
    assert_eq!(p.run(3_000_000), RunExit::Halted);
    assert_eq!(p.core.reg(Reg::S2), 7);
    // PTW cache writes and DTLB installs were traced.
    assert!(p
        .core
        .trace
        .for_structure(Structure::PtwCache)
        .any(|e| matches!(e.kind, TraceEventKind::Write { .. })));
    assert!(p
        .core
        .trace
        .for_structure(Structure::Dtlb)
        .any(|e| matches!(e.kind, TraceEventKind::Write { .. })));
}

#[test]
fn domain_attribution_follows_lifecycle() {
    let mut p = Platform::builder(CoreConfig::xiangshan())
        .enclave_code(0, |a, _| {
            a.li(Reg::T0, 1);
            // Yield mid-way; the implicit terminator stops again after
            // the resume.
            a.li(Reg::A7, SbiCall::StopEnclave.id());
            a.ecall();
            a.li(Reg::T0, 2);
        })
        .host_code(|a, _| {
            emit_sbi_call(a, SbiCall::RunEnclave, 0);
            emit_sbi_call(a, SbiCall::ResumeEnclave, 0);
        })
        .build()
        .expect("build");
    assert_eq!(p.run(3_000_000), RunExit::Halted);
    let switches: Vec<Domain> = p
        .core
        .trace
        .iter_events()
        .filter_map(|e| match e.kind {
            TraceEventKind::DomainSwitch { to } => Some(to),
            _ => None,
        })
        .collect();
    // Boot->untrusted, run->enclave, stop->untrusted, resume->enclave,
    // stop->untrusted (SM transitions interleave as SecurityMonitor).
    let enclave_entries = switches.iter().filter(|d| d.is_enclave()).count();
    assert_eq!(enclave_entries, 2, "run + resume: {switches:?}");
    assert_eq!(p.core.domain, Domain::Untrusted);
}

#[test]
fn user_mode_transition_via_sret() {
    // The host supervisor drops to U-mode; the U-mode code runs with the
    // same PMP view (Keystone gives PMP no U/S distinction for unlocked
    // entries) and the test ends there.
    let mut p = Platform::builder(CoreConfig::boom())
        .host_code(|a, _| {
            a.la(Reg::T0, "user");
            a.csrw(teesec_isa::csr::SEPC, Reg::T0);
            // sstatus.SPP = 0 (user)
            a.li(Reg::T1, 0x100);
            a.inst(teesec_isa::inst::Inst::Csr {
                op: teesec_isa::inst::CsrOp::Rc,
                rd: Reg::ZERO,
                src: teesec_isa::inst::CsrSrc::Reg(Reg::T1),
                csr: teesec_isa::csr::SSTATUS,
            });
            a.sret();
            a.label("user");
            a.li(Reg::S3, 0x0E5);
        })
        .build()
        .expect("build");
    assert_eq!(p.run(2_000_000), RunExit::Halted);
    assert_eq!(p.core.reg(Reg::S3), 0x0E5, "user code executed");
    assert_eq!(p.core.priv_level, teesec_isa::priv_level::PrivLevel::User);
}
