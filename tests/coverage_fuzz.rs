//! Coverage-guided fuzzing integration: the guided session must reach
//! strictly more coverage buckets than its seed budget alone uncovered,
//! deterministically, and the corpus must only contain coverage-increasing
//! inputs.

use teesec::cover::CoverageMap;
use teesec::fuzz::CoverageFuzzer;
use teesec::runner::run_case;
use teesec_uarch::config::CoreConfig;

#[test]
fn guided_fuzzing_beats_its_own_seeds() {
    let cfg = CoreConfig::boom();
    let outcome = CoverageFuzzer::new(6, 30).run(&cfg);
    assert!(outcome.executed > 6, "the guided phase must actually run");
    assert!(
        outcome.map.len() > outcome.seed_buckets,
        "guided mutations must reach strictly more buckets than the {} the seeds lit \
         (final: {})",
        outcome.seed_buckets,
        outcome.map.len()
    );
    assert!(!outcome.corpus.is_empty());
}

#[test]
fn guided_sessions_are_deterministic() {
    let cfg = CoreConfig::boom();
    let a = CoverageFuzzer::new(4, 16).run(&cfg);
    let b = CoverageFuzzer::new(4, 16).run(&cfg);
    assert_eq!(a.executed, b.executed);
    assert_eq!(a.map, b.map);
    assert_eq!(
        a.corpus.iter().map(|e| &e.name).collect::<Vec<_>>(),
        b.corpus.iter().map(|e| &e.name).collect::<Vec<_>>()
    );
}

#[test]
fn different_seed_changes_the_walk() {
    let cfg = CoreConfig::boom();
    let a = CoverageFuzzer::new(4, 16).run(&cfg);
    let b = CoverageFuzzer::new(4, 16).with_seed(99).run(&cfg);
    // Seed phase is identical; only the mutation walk differs.
    assert_eq!(a.seed_buckets, b.seed_buckets);
    let names_a: Vec<_> = a.corpus.iter().map(|e| e.name.clone()).collect();
    let names_b: Vec<_> = b.corpus.iter().map(|e| e.name.clone()).collect();
    assert_ne!(names_a, names_b, "mutation walks must depend on the seed");
}

/// Every corpus entry must be re-runnable and its coverage reproducible —
/// the corpus is a usable artifact, not just a log.
#[test]
fn corpus_entries_reproduce_their_coverage() {
    let cfg = CoreConfig::boom();
    let outcome = CoverageFuzzer::new(4, 12).run(&cfg);
    let mut replay = CoverageMap::new();
    for entry in &outcome.corpus {
        let tc = teesec::assemble::assemble_case(entry.path, entry.params, &cfg)
            .expect("corpus entries must assemble");
        let run = run_case(&tc, &cfg).expect("corpus entries must run");
        replay.merge(&CoverageMap::from_counters(&run.platform.core.counters()));
    }
    assert_eq!(
        replay, outcome.map,
        "replaying the corpus must reproduce the session's cumulative coverage"
    );
}
