//! Property-based invariants for the plan-coverage recorder:
//!
//! * every secret-residency window is bounded by its case's simulated
//!   cycle count and starts at a state-materializing event (a secret
//!   write / fill / counter bump) found in the buffered trace — or at
//!   cycle 0, the architectural seed;
//! * every exercised cell names a declared-or-undeclared matrix entry
//!   whose (structure, cycle window) actually appears in the trace, and
//!   every detected cell is also an exercised cell.

use std::sync::OnceLock;

use proptest::prelude::*;

use teesec::checker::check_case_coverage;
use teesec::runner::run_case;
use teesec::testcase::TestCase;
use teesec::Fuzzer;
use teesec_uarch::trace::TraceEventKind;
use teesec_uarch::CoreConfig;

static BOOM_CORPUS: OnceLock<Vec<TestCase>> = OnceLock::new();
static XS_CORPUS: OnceLock<Vec<TestCase>> = OnceLock::new();

/// A shared 120-case default-fuzzer pool per design, generated once.
fn corpus(cfg: &CoreConfig) -> &'static [TestCase] {
    let cell = if cfg.name == "xiangshan" {
        &XS_CORPUS
    } else {
        &BOOM_CORPUS
    };
    cell.get_or_init(|| Fuzzer::with_target(120).generate(cfg))
}

proptest! {
    /// Residency windows are physically plausible: `start <= end`, the
    /// end never exceeds the case's simulated cycle count, and the start
    /// cycle is either 0 (secret seeded architecturally before the run)
    /// or carries a materializing trace event — something was actually
    /// written at the cycle the window claims the secret arrived.
    #[test]
    fn residency_windows_are_bounded_and_start_at_a_write(
        idx in any::<usize>(),
        clear_hpcs in any::<bool>(),
        xiangshan in any::<bool>(),
    ) {
        let cfg = if xiangshan {
            CoreConfig::xiangshan()
        } else {
            CoreConfig::boom()
        };
        let pool = corpus(&cfg);
        let mut tc = pool[idx % pool.len()].clone();
        tc.sm_clear_hpcs = clear_hpcs;

        let outcome = run_case(&tc, &cfg).expect("case builds");
        let (_, cov) = check_case_coverage(&tc, &outcome, &cfg);

        for w in &cov.residency {
            prop_assert!(
                w.start_cycle <= w.end_cycle,
                "{} on {}: window for {:?} runs backwards ({} > {})",
                tc.name, cfg.name, w.structure, w.start_cycle, w.end_cycle
            );
            prop_assert!(
                w.end_cycle <= outcome.cycles,
                "{} on {}: window for {:?} outlives the run ({} > {})",
                tc.name, cfg.name, w.structure, w.end_cycle, outcome.cycles
            );
            let starts_at_write = w.start_cycle == 0
                || outcome.platform.core.trace.iter_events().any(|e| {
                    e.cycle == w.start_cycle
                        && matches!(
                            e.kind,
                            TraceEventKind::Fill { .. }
                                | TraceEventKind::Write { .. }
                                | TraceEventKind::CounterBump { .. }
                        )
                });
            prop_assert!(
                starts_at_write,
                "{} on {}: window for {:?} starts at cycle {} with no \
                 materializing event there",
                tc.name, cfg.name, w.structure, w.start_cycle
            );
        }
    }

    /// The exercised set is consistent: sorted and duplicate-free, every
    /// cell's structure appears in the trace at all, and every detected
    /// cell (a cell with findings) was also exercised.
    #[test]
    fn exercised_cells_are_sorted_and_cover_detections(
        idx in any::<usize>(),
        xiangshan in any::<bool>(),
    ) {
        let cfg = if xiangshan {
            CoreConfig::xiangshan()
        } else {
            CoreConfig::boom()
        };
        let pool = corpus(&cfg);
        let tc = &pool[idx % pool.len()];

        let outcome = run_case(tc, &cfg).expect("case builds");
        let (report, cov) = check_case_coverage(tc, &outcome, &cfg);

        prop_assert!(
            cov.exercised.windows(2).all(|p| p[0] < p[1]),
            "{}: exercised cells not strictly sorted", tc.name
        );
        for cell in &cov.exercised {
            prop_assert!(
                outcome
                    .platform
                    .core
                    .trace
                    .iter_events()
                    .any(|e| e.structure == cell.structure),
                "{}: cell {:?} exercised but its structure never traced",
                tc.name, cell
            );
        }
        for d in &cov.detected {
            prop_assert!(
                cov.exercised.binary_search(&d.cell).is_ok(),
                "{}: detected cell {:?} was never marked exercised",
                tc.name, d.cell
            );
        }
        if report.findings.is_empty() {
            prop_assert!(
                cov.detected.is_empty(),
                "{}: detections without findings", tc.name
            );
        }
    }
}
