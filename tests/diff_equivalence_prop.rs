//! Property-based differential testing: on randomly generated straight-line
//! and branchy gadget programs, the out-of-order core and the reference ISS
//! must agree at *every retire* (PC and destination value, via the same
//! lockstep machinery `teesec::diff` uses), not just at the end of the run —
//! and the minimizer must preserve whatever verdict it was asked to keep.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use teesec::minimize::minimize_case;
use teesec::testcase::{Actor, Step, TestCase};
use teesec_isa::inst::MemWidth;
use teesec_isa::reg::Reg;
use teesec_uarch::core::Core;
use teesec_uarch::iss::Iss;
use teesec_uarch::mem::Memory;
use teesec_uarch::CoreConfig;

#[path = "common/gadgets.rs"]
mod gadgets;
use gadgets::{gadget_program, BASE, DATA};

/// Lockstep-compares one program on one design: every retired PC and every
/// committed destination value must match the ISS, and so must the final
/// register file.
fn assert_lockstep_equivalence(seed: u64, branchy: bool, cfg: &CoreConfig) -> Result<(), String> {
    let words = gadget_program(seed, 60, branchy);
    let mut mem_core = Memory::new();
    mem_core.load_words(BASE, &words);
    let mut mem_iss = Memory::new();
    mem_iss.load_words(BASE, &words);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDA7A);
    for off in (0..0x400u64).step_by(8) {
        let v: u64 = rng.gen();
        mem_core.write_u64(DATA + off, v);
        mem_iss.write_u64(DATA + off, v);
    }

    let mut core = Core::new(cfg.clone(), mem_core, BASE);
    core.trace.set_enabled(false);
    core.set_retire_probe(true);
    let mut iss = Iss::new(mem_iss, BASE);

    let mut retires = 0u64;
    while !core.halted && core.cycle < 500_000 {
        core.step();
        for ev in core.take_retired_log() {
            retires += 1;
            let step = iss
                .step_retire(64)
                .ok_or_else(|| format!("seed {seed}: ISS stalled at retire #{retires}"))?;
            if step.pc != ev.pc {
                return Err(format!(
                    "seed {seed}: retire #{retires} pc mismatch (core {:#x}, iss {:#x})",
                    ev.pc, step.pc
                ));
            }
            if let (Some(rd), Some(v)) = (ev.inst.dest(), ev.result) {
                if iss.reg(rd) != v {
                    return Err(format!(
                        "seed {seed}: retire #{retires} pc {:#x} {rd} core={:#x} iss={:#x}",
                        ev.pc,
                        v,
                        iss.reg(rd)
                    ));
                }
            }
        }
    }
    if !core.halted {
        return Err(format!("seed {seed}: core did not halt"));
    }
    core.drain();
    if !iss.halted {
        return Err(format!("seed {seed}: ISS did not halt with the core"));
    }
    for r in Reg::all() {
        if core.reg(r) != iss.reg(r) {
            return Err(format!(
                "seed {seed}: final {r} core={:#x} iss={:#x}",
                core.reg(r),
                iss.reg(r)
            ));
        }
    }
    if let Some(addr) = core.mem.first_difference(&iss.mem) {
        return Err(format!("seed {seed}: memory differs at {addr:#x}"));
    }
    Ok(())
}

proptest! {
    /// Straight-line random gadgets: per-retire equivalence on BOOM.
    #[test]
    fn straight_line_gadgets_match_at_every_retire(seed in any::<u64>()) {
        if let Err(e) = assert_lockstep_equivalence(seed, false, &CoreConfig::boom()) {
            prop_assert!(false, "{}", e);
        }
    }

    /// Branchy random gadgets (forward branches + bounded loops): per-retire
    /// equivalence on XiangShan, whose speculation quirks are the nastier.
    #[test]
    fn branchy_gadgets_match_at_every_retire(seed in any::<u64>()) {
        if let Err(e) = assert_lockstep_equivalence(seed, true, &CoreConfig::xiangshan()) {
            prop_assert!(false, "{}", e);
        }
    }

    /// The minimizer never breaks the verdict it is asked to preserve, and
    /// it removes every step the predicate does not require.
    #[test]
    fn minimizer_preserves_arbitrary_verdicts(
        payload_slots in prop::collection::vec(0usize..30, 1..4),
        noise in 30usize..60,
    ) {
        let mut tc = TestCase::new("prop_min", teesec::paths::AccessPath::LoadL1Hit);
        for i in 0..noise {
            if payload_slots.contains(&i) {
                tc.push(Actor::Host, Step::Load { addr: 0x8030_0000 + i as u64 * 8, width: MemWidth::D });
            }
            tc.push(Actor::Host, Step::Nops(1));
        }
        let wanted: usize = tc
            .host_steps
            .iter()
            .filter(|s| matches!(s, Step::Load { .. }))
            .count();
        let min = minimize_case(&tc, |c| {
            c.host_steps.iter().filter(|s| matches!(s, Step::Load { .. })).count() == wanted
        });
        // Verdict preserved...
        let kept: usize = min
            .case
            .host_steps
            .iter()
            .filter(|s| matches!(s, Step::Load { .. }))
            .count();
        prop_assert_eq!(kept, wanted);
        // ...and nothing superfluous survives.
        prop_assert_eq!(min.final_steps, wanted);
    }
}
